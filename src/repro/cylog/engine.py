"""Bottom-up evaluation: naive reference engine and semi-naive engine.

Both engines implement the same semantics — stratified Datalog with
negation, aggregation, comparisons and assignments — over tuple stores with
persistent, incrementally maintained hash indexes (see
:mod:`repro.cylog.indexes`).  Evaluation consumes the per-rule
:class:`~repro.cylog.safety.JoinPlan` emitted by the compiler: body atoms
are cost-ordered and each atom's index key is fixed at plan time, and
recursive rules use *delta-first* rewrites so each semi-naive round drives
the join from the (small) delta instead of re-scanning the leading atoms.

:class:`SemiNaiveEngine` is *incremental across runs*: the
:class:`RelationStore` and the derivation provenance recorded in a
:class:`~repro.cylog.incremental.SupportIndex` are retained between
``run()`` calls, so a run propagates only the queued base-fact additions
and retractions stratum by stratum — support counting deletes exactly the
derivations that lost their footing, recursive strata fall back to
DRed-style over-delete / re-derive, and negation and aggregation are
maintained through trigger plans and recompute-and-diff respectively.
Every run reports what changed through ``EvaluationResult.added`` /
``removed``, which the CyLog processor and the platform consume as
first-class deltas.

The engine is also *shardable* and *parallelisable* (see
:mod:`repro.cylog.sharding`): with a :class:`ShardConfig` the relation
store is hash-partitioned by key prefix, the support index shards its
wildcard reverse index, and evaluation fans out — independent rules (and
per-shard delta partitions) within a stratum, independent strata within a
topological batch — to a pluggable executor.  Task results are merged
serially in submission order, so fixpoints, reported deltas and the
derivation counters are bit-identical at any worker count; the
``shard-diff`` CI oracle enforces byte-identical snapshots against the
single-store engine.

:func:`naive_evaluate` exists as an oracle for differential testing and as
the baseline for the E10 bench.  Both report work counters through
:class:`EngineStats`, which plugs into :class:`repro.metrics.Collector`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.cylog.ast import (
    AggregateTerm,
    Assignment,
    Atom,
    Comparison,
    Const,
    Negation,
    Program,
    Var,
)
from repro.cylog.builtins import apply_comparison, eval_expr
from repro.cylog.errors import CyLogTypeError
from repro.cylog.incremental import (
    DeltaLedger,
    RetractionScheduler,
    ShardedSupportIndex,
    SupportIndex,
    SupportKey,
    partition_recursive,
)
from repro.cylog.indexes import IntervalHierarchyIndex, TupleIndexSet
from repro.cylog.pretty import explain_rule
from repro.cylog.safety import (
    PLANNERS,
    CompiledProgram,
    CompiledRule,
    IntervalSpec,
    JoinPlan,
    build_join_plan,
    compile_program,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sharding imports us)
    from repro.cylog.sharding import ShardConfig

Tuple_ = tuple[Any, ...]
Bindings = dict[str, Any]

#: Write-aware exchange costing: observed per-relation delta rows per run
#: are smoothed with this EWMA weight (new sample vs history), and decayed
#: by the same factor on runs that touch nothing of the relation; rates
#: below the floor are forgotten entirely.  Purely a function of the
#: reported run deltas, so the rates — and any replan they trigger — are
#: identical on every executor at any worker count.
WRITE_RATE_ALPHA = 0.5
WRITE_RATE_FLOOR = 0.5


@dataclass
class EngineStats:
    """Work counters for one engine instance (or one naive evaluation).

    ``index_hits`` counts indexed lookups, ``full_scans`` unindexed relation
    scans, and ``tuples_joined`` the candidate rows those probes produced —
    the ratio is the direct measure of how much the planner's index choices
    help.  The delta counters measure cross-run incrementality:
    ``tuples_retracted`` / ``tuples_rederived`` / ``overdeletions`` trace the
    counting + DRed deletion machinery and ``supports_recorded`` the
    provenance kept for it.  Feed the counters into a metrics collector with
    :meth:`to_collector` (once per collector — the values are cumulative).
    """

    full_runs: int = 0
    incremental_runs: int = 0
    rounds: int = 0
    rules_fired: int = 0
    tuples_derived: int = 0
    tuples_joined: int = 0
    index_hits: int = 0
    full_scans: int = 0
    retractions: int = 0
    tuples_retracted: int = 0
    tuples_rederived: int = 0
    overdeletions: int = 0
    supports_recorded: int = 0
    supports_evicted: int = 0
    stratum_recomputes: int = 0
    agg_recomputes: int = 0
    shard_tasks: int = 0
    exchange_hits: int = 0
    chained_lookups: int = 0
    #: Replica-sync telemetry (distributed executors only; zero elsewhere).
    #: ``sync_rows`` / ``sync_bytes`` measure the engine-side mutation
    #: stream — net rows flushed to worker replicas and the canonical
    #: payload size — so they are identical at any worker count and in any
    #: replica mode.  ``replica_backfills`` / ``shared_mem_remaps`` count
    #: executor-side partition movements (lazy backfills on subscription
    #: growth, shared-memory segment rebuilds) and depend on how many
    #: workers the partitions are spread over.
    sync_rows: int = 0
    sync_bytes: int = 0
    replica_backfills: int = 0
    shared_mem_remaps: int = 0
    #: Mid-stream recompilations triggered by an observed write rate
    #: crossing an exchange break-even (write-aware exchange costing).
    write_replans: int = 0
    #: Interval access path: range scans served by the engine-side
    #: hierarchy index (descendant queries, closure enumerations, subtree
    #: collections under churn) and nodes relabelled *beyond* the moved
    #: subtree when gap allocation ran out of slots.  Both are engine-side
    #: serial work, so they are identical at any worker count.
    interval_scans: int = 0
    interval_renumbers: int = 0
    plans: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        return {
            "full_runs": self.full_runs,
            "incremental_runs": self.incremental_runs,
            "rounds": self.rounds,
            "rules_fired": self.rules_fired,
            "tuples_derived": self.tuples_derived,
            "tuples_joined": self.tuples_joined,
            "index_hits": self.index_hits,
            "full_scans": self.full_scans,
            "retractions": self.retractions,
            "tuples_retracted": self.tuples_retracted,
            "tuples_rederived": self.tuples_rederived,
            "overdeletions": self.overdeletions,
            "supports_recorded": self.supports_recorded,
            "supports_evicted": self.supports_evicted,
            "stratum_recomputes": self.stratum_recomputes,
            "agg_recomputes": self.agg_recomputes,
            "shard_tasks": self.shard_tasks,
            "exchange_hits": self.exchange_hits,
            "chained_lookups": self.chained_lookups,
            "sync_rows": self.sync_rows,
            "sync_bytes": self.sync_bytes,
            "replica_backfills": self.replica_backfills,
            "shared_mem_remaps": self.shared_mem_remaps,
            "write_replans": self.write_replans,
            "interval_scans": self.interval_scans,
            "interval_renumbers": self.interval_renumbers,
        }

    def derivation_counters(self) -> dict[str, int]:
        """The counters that must be identical across every shard count,
        executor and worker count (they are all merge-side): what was
        derived, retracted, re-derived and recorded — not how the probes
        that found it were routed."""
        keys = (
            "full_runs",
            "incremental_runs",
            "rounds",
            "rules_fired",
            "tuples_derived",
            "retractions",
            "tuples_retracted",
            "tuples_rederived",
            "overdeletions",
            "supports_recorded",
            "agg_recomputes",
            "interval_scans",
            "interval_renumbers",
        )
        full = self.as_dict()
        return {key: full[key] for key in keys}

    def absorb(self, other: "EngineStats") -> None:
        """Fold a scratch stats record (one evaluation task) into this one.

        Parallel tasks count their work locally and the engine absorbs the
        scratch records serially in submission order, so the cumulative
        counters are identical at any worker count.
        """
        for name, value in other.as_dict().items():
            if value:
                setattr(self, name, getattr(self, name) + value)

    def to_collector(self, collector, prefix: str = "cylog_engine") -> None:
        """Add every counter to a :class:`repro.metrics.Collector`."""
        for name, value in self.as_dict().items():
            collector.count(f"{prefix}.{name}", value)


class Relation:
    """A set of same-arity tuples with incrementally maintained indexes.

    Index keys (tuples of term positions) are registered up front from the
    compiled join plans via :meth:`ensure_index`; every :meth:`add` and
    :meth:`discard` then updates all registered indexes, so lookups never
    rebuild.  Unregistered keys still work — they are built lazily on first
    probe and maintained from then on.
    """

    __slots__ = ("arity", "_tuples", "_indexes")

    def __init__(self, arity: int, index_specs: Iterable[tuple[int, ...]] = ()) -> None:
        self.arity = arity
        self._tuples: set[Tuple_] = set()
        self._indexes = TupleIndexSet()
        for positions in index_specs:
            self._indexes.ensure(positions, ())

    def add(self, row: Tuple_) -> bool:
        """Insert ``row``; returns True when it was new."""
        if row in self._tuples:
            return False
        self._tuples.add(row)
        self._indexes.insert(row)
        return True

    def add_many(self, rows: Iterable[Tuple_]) -> set[Tuple_]:
        """Insert many rows, returning the subset that was new."""
        added = set()
        for row in rows:
            if self.add(row):
                added.add(row)
        return added

    def discard(self, row: Tuple_) -> bool:
        """Remove ``row`` from the set and every index; True when present."""
        if row not in self._tuples:
            return False
        self._tuples.discard(row)
        self._indexes.remove(row)
        return True

    def ensure_index(self, positions: tuple[int, ...]) -> None:
        """Register (and backfill) an index on ``positions``."""
        self._indexes.ensure(positions, self._tuples)

    def lookup(self, positions: tuple[int, ...], key: Tuple_):
        """Rows whose ``positions`` project onto ``key`` (live set; do not
        mutate).  ``positions == ()`` returns every row."""
        if not positions:
            return self._tuples
        if not self._indexes.has(positions):
            self._indexes.ensure(positions, self._tuples)
        return self._indexes.rows(positions, key)

    def match(self, pattern: Sequence[Any]) -> Iterable[Tuple_]:
        """Rows matching ``pattern`` (``None`` entries are wildcards)."""
        positions = tuple(i for i, v in enumerate(pattern) if v is not None)
        return self.lookup(positions, tuple(pattern[p] for p in positions))

    def __contains__(self, row: Tuple_) -> bool:
        return row in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def snapshot(self) -> frozenset:
        return frozenset(self._tuples)


class RelationStore:
    """Predicate name -> :class:`Relation`, creating on first use.

    ``index_specs`` (predicate -> set of index-key positions, from
    :meth:`CompiledProgram.index_specs`) are applied to every relation as it
    is created, so plan-chosen indexes exist before the first probe.
    """

    def __init__(
        self, index_specs: Mapping[str, Iterable[tuple[int, ...]]] | None = None
    ) -> None:
        self._relations: dict[str, Relation] = {}
        self._index_specs = dict(index_specs or {})

    def _make_relation(
        self, predicate: str, arity: int, index_specs: Iterable[tuple[int, ...]]
    ):
        """Factory hook: the sharded store substitutes its own relation."""
        return Relation(arity, index_specs)

    def get(self, predicate: str, arity: int) -> Relation:
        relation = self._relations.get(predicate)
        if relation is None:
            relation = self._make_relation(
                predicate, arity, self._index_specs.get(predicate, ())
            )
            self._relations[predicate] = relation
        elif relation.arity != arity:
            raise CyLogTypeError(
                f"predicate {predicate!r} used with arity {arity}, "
                f"stored with arity {relation.arity}"
            )
        return relation

    def maybe(self, predicate: str) -> Relation | None:
        return self._relations.get(predicate)

    def predicates(self) -> list[str]:
        return sorted(self._relations)

    def snapshot(self) -> dict[str, frozenset]:
        return {name: rel.snapshot() for name, rel in self._relations.items()}

    def fingerprint(self) -> str:
        """Stable content digest; equal iff snapshots are byte-identical
        (same digest a :class:`~repro.cylog.sharding.ShardedRelationStore`
        over the same facts reports)."""
        from repro.cylog.sharding import fingerprint_snapshot

        return fingerprint_snapshot(self.snapshot())


_EMPTY_ROWS: frozenset = frozenset()


@dataclass(frozen=True)
class EvaluationResult:
    """Immutable snapshot of every relation after evaluation.

    ``added_rows`` / ``removed_rows`` report the net change this run made
    relative to the engine's previous fixpoint (empty on oracle evaluations
    and on runs with nothing pending); :meth:`added` / :meth:`removed` are
    the per-predicate accessors the processor and the platform consume.
    """

    relations: Mapping[str, frozenset]
    added_rows: Mapping[str, frozenset] = field(default_factory=dict)
    removed_rows: Mapping[str, frozenset] = field(default_factory=dict)

    def facts(self, predicate: str) -> frozenset:
        """All tuples of ``predicate`` (empty when unknown)."""
        return self.relations.get(predicate, _EMPTY_ROWS)

    def sorted_facts(self, predicate: str) -> list[Tuple_]:
        return sorted(self.facts(predicate), key=repr)

    def count(self, predicate: str) -> int:
        return len(self.facts(predicate))

    def added(self, predicate: str) -> frozenset:
        """Tuples of ``predicate`` derived (or asserted) by this run."""
        return self.added_rows.get(predicate, _EMPTY_ROWS)

    def removed(self, predicate: str) -> frozenset:
        """Tuples of ``predicate`` retracted by this run."""
        return self.removed_rows.get(predicate, _EMPTY_ROWS)

    def changed_predicates(self) -> list[str]:
        return sorted(set(self.added_rows) | set(self.removed_rows))

    def has_changes(self) -> bool:
        return bool(self.added_rows) or bool(self.removed_rows)


# ---------------------------------------------------------------------------
# Joining one rule body
# ---------------------------------------------------------------------------


def _bind_atom(atom: Atom, row: Tuple_, bindings: Bindings) -> Bindings | None:
    """Extend ``bindings`` with the atom's fresh variables from ``row``.

    Returns ``None`` when a repeated variable disagrees; constants and bound
    variables were already enforced by the index key.
    """
    extended: Bindings | None = None
    for position, term in enumerate(atom.terms):
        if not isinstance(term, Var) or term.is_anonymous:
            continue
        value = row[position]
        current = bindings if extended is None else extended
        if term.name in current:
            if current[term.name] != value or (
                isinstance(current[term.name], bool) != isinstance(value, bool)
            ):
                return None
            continue
        if extended is None:
            extended = dict(bindings)
        extended[term.name] = value
    return extended if extended is not None else dict(bindings)


def _index_key(atom: Atom, positions: tuple[int, ...], bindings: Bindings) -> Tuple_:
    """The concrete lookup key for the plan-chosen index positions."""
    key: list[Any] = []
    for position in positions:
        term = atom.terms[position]
        if isinstance(term, Const):
            key.append(term.value)
        else:
            key.append(bindings[term.name])
    return tuple(key)


def solutions(
    plan: JoinPlan | Sequence,
    store: RelationStore,
    initial: Bindings | None = None,
    delta_position: int | None = None,
    delta_relation: Relation | None = None,
    stats: EngineStats | None = None,
) -> Iterator[Bindings]:
    """Yield every binding satisfying ``plan``.

    ``plan`` is a compiled :class:`JoinPlan` (or a plain ordered literal
    sequence, wrapped on the fly).  ``delta_position``/``delta_relation``
    implement the semi-naive rewrite: the positive atom at that plan
    position reads from the delta relation instead of the full store.
    """
    if not isinstance(plan, JoinPlan):
        plan = JoinPlan.from_ordered(plan)
    steps = plan.steps

    def recurse(position: int, bindings: Bindings) -> Iterator[Bindings]:
        if position == len(steps):
            yield bindings
            return
        step = steps[position]
        literal = step.literal
        if isinstance(literal, Atom):
            if position == delta_position and delta_relation is not None:
                relation: Relation | None = delta_relation
            else:
                relation = store.maybe(literal.predicate)
            if relation is None or relation.arity != literal.arity:
                return  # no facts yet for this predicate
            rows = relation.lookup(
                step.index_positions,
                _index_key(literal, step.index_positions, bindings),
            )
            if stats is not None:
                if step.index_positions:
                    stats.index_hits += 1
                    if step.exchange_position is not None:
                        stats.exchange_hits += 1
                    elif step.chained:
                        stats.chained_lookups += 1
                else:
                    stats.full_scans += 1
                stats.tuples_joined += len(rows)
            for row in rows:
                extended = _bind_atom(literal, row, bindings)
                if extended is not None:
                    yield from recurse(position + 1, extended)
            return
        if isinstance(literal, Negation):
            relation = store.maybe(literal.atom.predicate)
            if relation is not None and relation.arity == literal.atom.arity:
                rows = relation.lookup(
                    step.index_positions,
                    _index_key(literal.atom, step.index_positions, bindings),
                )
                if stats is not None:
                    if step.index_positions:
                        stats.index_hits += 1
                        if step.exchange_position is not None:
                            stats.exchange_hits += 1
                        elif step.chained:
                            stats.chained_lookups += 1
                    else:
                        stats.full_scans += 1
                if rows:
                    return  # a match defeats the negation
            yield from recurse(position + 1, bindings)
            return
        if isinstance(literal, Comparison):
            left = eval_expr(literal.left, bindings)
            right = eval_expr(literal.right, bindings)
            if apply_comparison(literal.op, left, right):
                yield from recurse(position + 1, bindings)
            return
        if isinstance(literal, Assignment):
            value = eval_expr(literal.expr, bindings)
            name = literal.var.name
            if literal.var.is_anonymous:
                yield from recurse(position + 1, bindings)
                return
            if name in bindings:
                if apply_comparison("==", bindings[name], value):
                    yield from recurse(position + 1, bindings)
                return
            extended = dict(bindings)
            extended[name] = value
            yield from recurse(position + 1, extended)
            return
        raise CyLogTypeError(f"unknown literal in plan: {literal!r}")

    yield from recurse(0, dict(initial or {}))


def _head_tuple(rule: CompiledRule, bindings: Bindings) -> Tuple_:
    values: list[Any] = []
    for term in rule.rule.head.terms:
        if isinstance(term, Const):
            values.append(term.value)
        elif isinstance(term, Var):
            values.append(bindings[term.name])
        else:  # pragma: no cover - aggregates handled separately
            raise CyLogTypeError("aggregate rule evaluated as plain rule")
    return tuple(values)


def _head_bindings(rule: CompiledRule, row: Tuple_) -> Bindings | None:
    """Bindings pinning the rule's head to ``row`` (for re-derivation).

    Returns ``None`` when the head cannot produce ``row`` (constant
    mismatch, repeated-variable conflict).
    """
    bindings: Bindings = {}
    for term, value in zip(rule.rule.head.terms, row):
        if isinstance(term, Const):
            if term.value != value or (
                isinstance(term.value, bool) != isinstance(value, bool)
            ):
                return None
        elif isinstance(term, Var) and not term.is_anonymous:
            if term.name in bindings:
                if bindings[term.name] != value or (
                    isinstance(bindings[term.name], bool) != isinstance(value, bool)
                ):
                    return None
            else:
                bindings[term.name] = value
    return bindings


def _dep_row(atom: Atom, bindings: Bindings) -> Tuple_:
    """The body row ``atom`` consumed under ``bindings``; ``None`` marks
    positions hidden behind anonymous variables."""
    values: list[Any] = []
    for term in atom.terms:
        if isinstance(term, Const):
            values.append(term.value)
        elif term.is_anonymous:
            values.append(None)
        else:
            values.append(bindings[term.name])
    return tuple(values)


def support_key_for(
    rule_index: int, rule: CompiledRule, bindings: Bindings
) -> "SupportKey":
    """The derivation identity of one rule firing: the rule plus the
    positive body rows it consumed.  A pure function of its arguments, so
    process workers (see :mod:`repro.cylog.procpool`) compute keys
    byte-identical to the engine's."""
    deps = tuple(
        (atom.predicate, _dep_row(atom, bindings))
        for atom in rule.rule.body_atoms()
    )
    return (rule_index, deps)


_AGG_FUNCS = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
    "avg": lambda values: sum(values) / len(values),
}


def _fold_aggregate_row(head, key: Tuple_, per_agg: dict[str, set]) -> Tuple_:
    """Assemble one head row from a group key and its collected value sets."""
    key_iter = iter(key)
    values: list[Any] = []
    for term in head.terms:
        if isinstance(term, AggregateTerm):
            collected = sorted(per_agg[term.var.name], key=repr)
            if term.func != "count" and any(
                isinstance(v, bool) or not isinstance(v, (int, float))
                for v in collected
            ):
                raise CyLogTypeError(
                    f"aggregate {term.func}<{term.var.name}> over "
                    "non-numeric values"
                )
            values.append(_AGG_FUNCS[term.func](collected))
        elif isinstance(term, Const):
            values.append(term.value)
        else:
            values.append(next(key_iter))
    return tuple(values)


def _row_group_key(head, row: Tuple_) -> Tuple_:
    """The group key a stored aggregate row belongs to (plain-var positions,
    head order — mirroring the key built during evaluation)."""
    return tuple(
        value
        for term, value in zip(head.terms, row)
        if isinstance(term, Var) and not term.is_anonymous
    )


def _agg_support_pred(head: str, rule_index: int) -> str:
    """Synthetic support-index predicate recording which aggregate *groups*
    consumed which body rows (join bodies only).  The section-sign
    separator cannot appear in a parsed predicate name, so the synthetic
    namespace never collides with user relations."""
    return f"{head}§agg{rule_index}"


def _agg_body_is_join(rule: CompiledRule) -> bool:
    """True when the aggregate rule's body joins two or more positive
    atoms — the case whose group localisation needs recorded provenance
    (a single atom binds its group keys directly from the changed rows)."""
    return sum(1 for literal in rule.rule.body if isinstance(literal, Atom)) > 1


def _evaluate_aggregate_rule(
    rule: CompiledRule, store: RelationStore, stats: EngineStats | None = None
) -> set[Tuple_]:
    """Group body solutions and fold aggregates (set semantics: the
    aggregated variable is collected as a *set* per group)."""
    head = rule.rule.head
    groups: dict[Tuple_, dict[str, set]] = {}
    aggregates = head.aggregate_terms()
    group_vars = head.group_by_vars()
    for bindings in solutions(rule.join_plan, store, stats=stats):
        key = tuple(bindings[v.name] for v in group_vars)
        per_agg = groups.setdefault(key, {a.var.name: set() for a in aggregates})
        for aggregate in aggregates:
            per_agg[aggregate.var.name].add(bindings[aggregate.var.name])
    return {_fold_aggregate_row(head, key, per_agg) for key, per_agg in groups.items()}


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------


def _load_base_facts(
    compiled: CompiledProgram,
    store: RelationStore,
    extra_facts: Mapping[str, Iterable[Tuple_]] | None,
) -> None:
    for fact in compiled.program.facts:
        store.get(fact.atom.predicate, fact.atom.arity).add(
            tuple(t.value for t in fact.atom.terms)  # type: ignore[union-attr]
        )
    if extra_facts:
        for predicate, rows in extra_facts.items():
            rows = [tuple(r) for r in rows]
            if not rows:
                continue
            arity = len(rows[0])
            relation = store.get(predicate, arity)
            for row in rows:
                if len(row) != arity:
                    raise CyLogTypeError(
                        f"mixed arity facts supplied for {predicate!r}"
                    )
                relation.add(row)


def naive_evaluate(
    program: Program | CompiledProgram,
    extra_facts: Mapping[str, Iterable[Tuple_]] | None = None,
    stats: EngineStats | None = None,
) -> EvaluationResult:
    """Reference naive evaluation: recompute every rule until fixpoint.

    Exponentially slower than semi-naive on recursive programs but obviously
    correct; used as the differential-testing oracle.
    """
    compiled = (
        program if isinstance(program, CompiledProgram) else compile_program(program)
    )
    store = RelationStore(compiled.index_specs())
    _load_base_facts(compiled, store, extra_facts)
    for stratum in range(compiled.strata_count):
        stratum_rules = [r for r in compiled.rules if r.stratum == stratum]
        aggregate_rules = [r for r in stratum_rules if r.rule.head.has_aggregates]
        plain_rules = [r for r in stratum_rules if not r.rule.head.has_aggregates]
        for rule in aggregate_rules:
            relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
            for row in _evaluate_aggregate_rule(rule, store, stats):
                relation.add(row)
        changed = True
        while changed:
            changed = False
            for rule in plain_rules:
                relation = store.get(rule.rule.head.predicate, rule.rule.head.arity)
                if stats is not None:
                    stats.rules_fired += 1
                derived = [
                    _head_tuple(rule, bindings)
                    for bindings in solutions(rule.join_plan, store, stats=stats)
                ]
                for row in derived:
                    if relation.add(row):
                        if stats is not None:
                            stats.tuples_derived += 1
                        changed = True
    return EvaluationResult(store.snapshot())


@dataclass(frozen=True)
class _StratumInfo:
    """Per-stratum rule partition used by both run modes.

    ``recursive`` holds the head predicates on a positive within-stratum
    cycle — the ones whose deletions need DRed over-delete / re-derive
    instead of pure support counting.
    """

    plain: tuple[tuple[int, CompiledRule], ...]
    aggregates: tuple[tuple[int, CompiledRule], ...]
    heads: frozenset[str]
    recursive: frozenset[str]
    #: Predicates read positively by the stratum's plain rules.
    referenced: frozenset[str]
    #: (rule_index, rule, negation literal) triples for the stratum.
    negations: tuple[tuple[int, CompiledRule, Negation], ...]
    #: Per aggregate rule index, every predicate its body mentions.
    agg_inputs: dict[int, frozenset[str]] = field(default_factory=dict)


class SemiNaiveEngine:
    """Stratified semi-naive engine, incremental *across* ``run()`` calls.

    The relation store, the per-derivation support index and the per-rule
    aggregate outputs survive between runs; :meth:`add_facts` and
    :meth:`retract_facts` queue per-predicate deltas and the next
    :meth:`run` propagates exactly those, stratum by stratum, reusing the
    compiled delta-first join plans.  Deletion is handled by support
    counting (exact outside recursion) with DRed over-delete / re-derive
    inside recursive components, and negation/aggregation are maintained
    through trigger plans and recompute-and-diff — so ``revoke``-style
    updates no longer force a full recomputation.  ``run(full=True)`` is
    the from-scratch escape hatch (it also re-plans joins against the live
    base-fact cardinalities when ``planner="cost"``).

    With a :class:`~repro.cylog.sharding.ShardConfig` (or the ``shards`` /
    ``executor`` / ``max_workers`` shorthand) the store is hash-sharded by
    key prefix and evaluation fans out to the configured executor:
    independent strata inside a topological batch run as one task each,
    and inside a stratum each (rule, delta shard) partition is one task.
    Tasks only *read* shared state and count work in scratch
    ``EngineStats``; the engine merges derived tuples, supports and
    counters serially in submission order, so results are bit-identical
    at any worker count.  ``close()`` releases executor threads.
    """

    def __init__(
        self,
        program: Program | CompiledProgram,
        planner: str | None = None,
        shard_config: "ShardConfig | None" = None,
        shards: int | None = None,
        executor: str | None = None,
        max_workers: int | None = None,
        support_budget: int | None = None,
    ) -> None:
        from repro.cylog.sharding import ShardConfig

        if shard_config is None:
            shard_config = ShardConfig(
                shards=shards or 1,
                executor=executor or "serial",
                max_workers=max_workers,
            )
        elif shards is not None or executor is not None or max_workers is not None:
            raise ValueError(
                "pass either shard_config or shards/executor/max_workers, not both"
            )
        self.shard_config = shard_config
        self._executor = shard_config.build_executor()
        self._parallel = self._executor.name != "serial"
        #: Process-based executors cannot see the engine's store: tasks
        #: ship as descriptors, stratum fan-out stays inline, and store
        #: mutations are streamed to worker replicas via ``_unsynced``.
        self._distributed = self._executor.distributed
        self._plan_shards = shard_config.plan_shards
        self._interval_enabled = shard_config.interval
        if isinstance(program, CompiledProgram):
            self.planner = planner or program.planner
            if self.planner not in PLANNERS:
                raise ValueError(
                    f"unknown planner {self.planner!r}; expected one of {PLANNERS}"
                )
            if (
                self.planner == program.planner
                and program.shards == self._plan_shards
                and program.interval == self._interval_enabled
            ):
                self.compiled = program
            else:  # recompile so planner / shard layout actually take effect
                self.compiled = compile_program(
                    program.program,
                    planner=self.planner,
                    shards=self._plan_shards,
                    interval=self._interval_enabled,
                )
        else:
            self.planner = planner or "cost"
            self.compiled = compile_program(
                program,
                planner=self.planner,
                shards=self._plan_shards,
                interval=self._interval_enabled,
            )
        self._active = self.compiled
        self._strata = self._build_stratum_info()
        self._batches = self._compute_batches()
        self._planned_cardinalities: dict[str, float] | None = None
        self._base_facts: dict[str, set[Tuple_]] = {}
        #: Arity each base predicate was first used with — retained even
        #: when every fact is retracted, so a later re-assertion cannot
        #: smuggle in a different arity.
        self._base_arity: dict[str, int] = {}
        for fact in self.compiled.program.facts:
            row = tuple(t.value for t in fact.atom.terms)  # type: ignore[union-attr]
            self._base_facts.setdefault(fact.atom.predicate, set()).add(row)
            self._base_arity.setdefault(fact.atom.predicate, len(row))
        self._store: RelationStore | None = None
        #: Support-index memory budget (None = unbounded); see
        #: SupportIndex.budget for the degradation semantics.
        self._support_budget = support_budget
        #: Evictions charged to support indexes already discarded by a
        #: full run, so stats.supports_evicted stays cumulative.
        self._evicted_base = 0
        self._supports = self._new_supports()
        self._agg_cache: dict[int, set[Tuple_]] = {}
        self._pending = DeltaLedger()
        self._gain_plans: dict[tuple[int, int], JoinPlan] = {}
        self._loss_plans: dict[tuple[int, int], JoinPlan] = {}
        self._rederive_plans: dict[int, JoinPlan] = {}
        self._agg_group_plans: dict[int, JoinPlan] = {}
        #: Exchange repartitions demanded by runtime-built plans (negation
        #: triggers, re-derivation, per-group aggregates) — folded into
        #: every store the engine builds, on top of the compiled specs.
        self._extra_repartitions: dict[str, set[int]] = {}
        #: Net store mutations not yet streamed to process workers,
        #: partitioned by (predicate, primary shard) at mutation time so
        #: flushes ship per-worker slices (``None`` unless the executor is
        #: distributed).
        self._unsynced = self._new_unsynced() if self._distributed else None
        #: Observed write rates (EWMA of net delta rows per run, per
        #: predicate) feeding the write-aware exchange cost model, and the
        #: rates the active plans were compiled against.
        self._write_rates: dict[str, float] = {}
        self._planned_write_rates: dict[str, float] = {}
        #: Engine-side interval hierarchy indexes, one per eligible
        #: transitive-closure head (never shipped to worker replicas:
        #: interval-answered strata do not dispatch).  ``_interval_seen``
        #: remembers each index's cumulative scan/renumber counters at the
        #: last stats fold, so engine stats absorb exact increments.
        self._interval: dict[str, IntervalHierarchyIndex] = {}
        self._interval_seen: dict[str, tuple[int, int]] = {}
        self.stats = EngineStats()
        self.runs = 0  # full evaluations performed (observability for benches)

    # -- sharding / executor plumbing --------------------------------------
    def _new_lock(self) -> threading.Lock | None:
        return threading.Lock() if self._parallel else None

    def _new_store(self):
        from repro.cylog.sharding import build_store

        repartitions = {
            pred: set(positions)
            for pred, positions in self._active.repartition_specs().items()
        }
        for pred, positions in self._extra_repartitions.items():
            repartitions.setdefault(pred, set()).update(positions)
        return build_store(
            self.shard_config, self._active.index_specs(), repartitions
        )

    def _register_exchange(self, plan: JoinPlan) -> None:
        """Register a runtime-built plan's exchange repartitions with the
        live store (and remember them for stores built later)."""
        if not (self.shard_config.sharded and self.shard_config.exchange):
            return
        for step in plan.steps:
            if step.exchange_position is None:
                continue
            literal = step.literal
            atom = literal.atom if isinstance(literal, Negation) else literal
            self._extra_repartitions.setdefault(atom.predicate, set()).add(
                step.exchange_position
            )
            if self._store is not None:
                self._store.ensure_repartition(  # type: ignore[union-attr]
                    atom.predicate, step.exchange_position
                )

    # -- process-worker replica sync ---------------------------------------
    def _new_unsynced(self):
        from repro.cylog.sharding import PartitionedLedger

        return PartitionedLedger(self.shard_config.shards)

    def _note_add(self, predicate: str, row: Tuple_) -> None:
        if self._unsynced is not None:
            self._unsynced.add(predicate, row)

    def _note_remove(self, predicate: str, row: Tuple_) -> None:
        if self._unsynced is not None:
            self._unsynced.remove(predicate, row)

    def _partition_provider(
        self, store: RelationStore
    ) -> "Callable[[str, int], tuple[int, tuple] | None]":
        """``(arity, rows)`` of one (predicate, primary shard) partition,
        read authoritatively from ``store`` (``None`` when the relation
        does not exist) — the source for lazy replica backfills.  Only
        consulted at dispatch time, right after a flush, so the store and
        the synced replica state agree."""
        n_shards = self.shard_config.shards

        def provider(predicate: str, shard: int) -> tuple | None:
            relation = store.maybe(predicate)
            if relation is None:
                return None  # replicas must also lack it (existence parity)
            if n_shards > 1:
                rows = tuple(relation.shard(shard))  # type: ignore[union-attr]
            else:
                rows = tuple(relation) if shard == 0 else ()
            return relation.arity, rows

        return provider

    def _reset_workers(self, store: RelationStore) -> None:
        """Install a fresh baseline in the process workers (full run)."""
        if self._unsynced is None:
            return
        base = {
            predicate: tuple(rows)
            for predicate, rows in self._base_facts.items()
            if rows
        }
        self._executor.reset(  # type: ignore[attr-defined]
            self._active,
            base,
            n_shards=self.shard_config.shards,
            partition_provider=self._partition_provider(store),
        )
        self._unsynced = self._new_unsynced()

    def _flush_sync(self) -> None:
        """Stream accumulated mutations to worker replicas (pre-dispatch).

        ``sync_rows`` counts the net rows flushed and ``sync_bytes`` the
        canonical payload size the executor reports — both are functions
        of the mutation stream alone, identical at any worker count and
        in any replica mode (what each *worker* actually receives is the
        executor's per-mode telemetry).
        """
        if self._unsynced:
            added, removed = self._unsynced.as_partition_mappings()
            self.stats.sync_rows += self._unsynced.row_count()
            self.stats.sync_bytes += self._executor.sync(  # type: ignore[attr-defined]
                added, removed
            )
            self._unsynced = self._new_unsynced()

    def _new_supports(self) -> SupportIndex:
        if self.shard_config.sharded:
            return ShardedSupportIndex(
                self.shard_config.shards,
                lock=self._new_lock(),
                budget=self._support_budget,
            )
        return SupportIndex(lock=self._new_lock(), budget=self._support_budget)

    def _demote_to_serial(self) -> None:
        """Permanently fall back to inline evaluation after the process
        pool broke (a worker died mid-dispatch).

        The engine store was authoritative all along — replicas were
        read-only mirrors — so no state is lost; the engine simply stops
        shipping tasks and syncs.  ``shard_config`` keeps describing the
        requested layout for observability.
        """
        from repro.cylog.sharding import SerialExecutor

        try:
            self._executor.close()
        except Exception:
            pass  # the pool is already broken; closing is best-effort
        self._executor = SerialExecutor()
        self._parallel = False
        self._distributed = False
        self._unsynced = None

    def close(self) -> None:
        """Release the executor's worker threads (no-op when serial)."""
        self._executor.close()

    def __enter__(self) -> "SemiNaiveEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- fact management ---------------------------------------------------
    def add_facts(self, predicate: str, rows: Iterable[Tuple_]) -> int:
        """Queue base facts for ``predicate``; returns how many were new.

        Rule-head (IDB) predicates cannot receive base facts.
        """
        if predicate in self.compiled.program.idb_predicates():
            raise CyLogTypeError(
                f"cannot add base facts to derived predicate {predicate!r}"
            )
        target = self._base_facts.setdefault(predicate, set())
        added = 0
        for row in rows:
            row = tuple(row)
            arity = self._base_arity.setdefault(predicate, len(row))
            if len(row) != arity:
                raise CyLogTypeError(f"mixed arity facts supplied for {predicate!r}")
            if row not in target:
                target.add(row)
                self._pending.add(predicate, row)
                added += 1
        return added

    def retract_facts(self, predicate: str, rows: Iterable[Tuple_]) -> int:
        """Queue base-fact retractions; returns how many were present.

        Only extensional facts can be retracted — derived tuples disappear
        on their own when they lose every derivation.
        """
        if predicate in self.compiled.program.idb_predicates():
            raise CyLogTypeError(
                f"cannot retract facts of derived predicate {predicate!r}"
            )
        target = self._base_facts.get(predicate)
        removed = 0
        for row in rows:
            row = tuple(row)
            if target is not None and row in target:
                target.discard(row)
                self._pending.remove(predicate, row)
                removed += 1
        self.stats.retractions += removed
        return removed

    # -- evaluation --------------------------------------------------------
    def run(self, full: bool = False) -> EvaluationResult:
        """Evaluate to fixpoint, incrementally when possible.

        With no pending changes the previous fixpoint is returned as-is
        (with empty deltas); pending additions and retractions are
        propagated in place.  ``full=True`` forces a from-scratch
        recomputation — the escape hatch and the oracle baseline.
        """
        if full or self._store is None:
            result = self._full_run()
        elif not self._pending:
            result = EvaluationResult(self._store.snapshot())
        else:
            result = self._incremental_run()
        self.stats.supports_evicted = self._evicted_base + self._supports.evicted
        telemetry = getattr(self._executor, "telemetry", None)
        if telemetry is not None:
            counters = telemetry()
            self.stats.replica_backfills = counters["replica_backfills"]
            self.stats.shared_mem_remaps = counters["shared_mem_remaps"]
        return result

    def facts(self, predicate: str) -> frozenset:
        """Current tuples of ``predicate`` (after the last :meth:`run`)."""
        if self._store is None or self._pending:
            self.run()
        relation = self._store.maybe(predicate)  # type: ignore[union-attr]
        return relation.snapshot() if relation is not None else frozenset()

    @property
    def store(self) -> RelationStore:
        if self._store is None or self._pending:
            self.run()
        return self._store  # type: ignore[return-value]

    # -- planning ----------------------------------------------------------
    def _replan(self) -> None:
        """Recompile join plans against the live base-fact cardinalities.

        Skipped when the cardinalities are unchanged since the last full
        run (recompilation and plan pretty-printing are then pure waste).
        """
        if self.planner != "cost":
            if not self.stats.plans:
                self._record_plans()
            return
        cardinalities = {
            predicate: float(len(rows))
            for predicate, rows in self._base_facts.items()
        }
        if (
            cardinalities == self._planned_cardinalities
            and self._write_rates == self._planned_write_rates
        ):
            return
        self._planned_cardinalities = cardinalities
        self._recompile_active(cardinalities)

    def _recompile_active(self, cardinalities: Mapping[str, float] | None) -> None:
        """Swap in freshly compiled plans (live cardinalities + observed
        write rates) and drop every plan-derived cache."""
        self._planned_write_rates = dict(self._write_rates)
        self._active = compile_program(
            self.compiled.program,
            cardinalities=cardinalities,
            planner=self.planner,
            shards=self._plan_shards,
            write_rates=self._write_rates or None,
            interval=self._interval_enabled,
        )
        self._strata = self._build_stratum_info()
        self._batches = self._compute_batches()
        self._gain_plans.clear()
        self._loss_plans.clear()
        self._rederive_plans.clear()
        self._agg_group_plans.clear()
        self._record_plans()

    # -- write-aware exchange costing ---------------------------------------
    def _observe_write_rates(
        self,
        added: Mapping[str, frozenset],
        removed: Mapping[str, frozenset],
    ) -> None:
        """Fold one incremental run's net deltas into the per-predicate
        write-rate EWMA (see ``WRITE_RATE_ALPHA``)."""
        if self.planner != "cost":
            return
        samples: dict[str, float] = {}
        for mapping in (added, removed):
            for predicate, rows in mapping.items():
                samples[predicate] = samples.get(predicate, 0.0) + float(len(rows))
        rates = self._write_rates
        for predicate in list(rates):
            if predicate not in samples:
                decayed = rates[predicate] * (1.0 - WRITE_RATE_ALPHA)
                if decayed < WRITE_RATE_FLOOR:
                    del rates[predicate]
                else:
                    rates[predicate] = decayed
        for predicate, sample in samples.items():
            previous = rates.get(predicate)
            rates[predicate] = (
                sample
                if previous is None
                else (1.0 - WRITE_RATE_ALPHA) * previous + WRITE_RATE_ALPHA * sample
            )

    def _write_replan_due(self) -> bool:
        """True when an observed write rate crossed the break-even of an
        exchange/chained decision in the active plans, i.e. recompiling
        with the rates would flip at least one access path."""
        if self.planner != "cost" or not self.shard_config.exchange:
            return False
        if not self._write_rates and not self._planned_write_rates:
            return False
        for rule in self._active.rules:
            plans = [rule.join_plan, *rule.delta_plans.values()]
            plans.extend(seed.join_plan for seed in rule.seed_plans)
            for plan in plans:
                for step in plan.steps:
                    if step.exchange_break_even is None:
                        continue
                    literal = step.literal
                    atom = (
                        literal.atom if isinstance(literal, Negation) else literal
                    )
                    rate = self._write_rates.get(atom.predicate)
                    if rate is None:
                        continue
                    if (
                        step.exchange_position is not None
                        and rate > step.exchange_break_even
                    ):
                        return True  # maintenance now outweighs probe savings
                    if step.chained and rate < step.exchange_break_even:
                        return True  # repartition would now pay its way
        return False

    def _replan_for_writes(self) -> None:
        """Mid-stream replan when observed write rates cross a break-even.

        Recompiles against the live rates, registers any newly promoted
        repartitions on the live store (demoted ones stay — unused but
        correct), and ships the new plans to process workers so engine-
        and worker-side probe counters keep agreeing.  Purely cost-level:
        fixpoints and reported deltas are unchanged.
        """
        if not self._write_replan_due():
            return
        self.stats.write_replans += 1
        self._recompile_active(self._planned_cardinalities)
        if (
            self._store is not None
            and self.shard_config.sharded
            and self.shard_config.exchange
        ):
            for predicate, positions in self._active.repartition_specs().items():
                for position in positions:
                    self._store.ensure_repartition(  # type: ignore[union-attr]
                        predicate, position
                    )
        if self._distributed:
            self._executor.replan(self._active)  # type: ignore[attr-defined]

    def _record_plans(self) -> None:
        self.stats.plans = {
            f"{rule.rule.head.predicate}#{index}": explain_rule(rule)
            for index, rule in enumerate(self._active.rules)
        }

    def _build_stratum_info(self) -> tuple[_StratumInfo, ...]:
        infos: list[_StratumInfo] = []
        for stratum in range(self._active.strata_count):
            rules = [
                (index, rule)
                for index, rule in enumerate(self._active.rules)
                if rule.stratum == stratum
            ]
            plain = tuple((i, r) for i, r in rules if not r.rule.head.has_aggregates)
            aggregates = tuple((i, r) for i, r in rules if r.rule.head.has_aggregates)
            heads = frozenset(r.rule.head.predicate for _, r in rules)
            plain_heads = frozenset(r.rule.head.predicate for _, r in plain)
            edges: dict[str, set[str]] = {}
            referenced: set[str] = set()
            negations: list[tuple[int, CompiledRule, Negation]] = []
            for index, rule in plain:
                for atom in rule.rule.body_atoms():
                    referenced.add(atom.predicate)
                    if atom.predicate in plain_heads:
                        edges.setdefault(rule.rule.head.predicate, set()).add(
                            atom.predicate
                        )
                for literal in rule.rule.body:
                    if isinstance(literal, Negation):
                        negations.append((index, rule, literal))
            agg_inputs: dict[int, frozenset[str]] = {}
            for index, rule in aggregates:
                preds = {atom.predicate for atom in rule.rule.body_atoms()}
                for literal in rule.rule.body:
                    if isinstance(literal, Negation):
                        preds.add(literal.atom.predicate)
                agg_inputs[index] = frozenset(preds)
            infos.append(
                _StratumInfo(
                    plain=plain,
                    aggregates=aggregates,
                    heads=heads,
                    recursive=partition_recursive(plain_heads, edges),
                    referenced=frozenset(referenced),
                    negations=tuple(negations),
                    agg_inputs=agg_inputs,
                )
            )
        return tuple(infos)

    def _compute_batches(self) -> tuple[tuple[int, ...], ...]:
        """Topological batches of mutually independent strata.

        Stratum ``t`` depends on stratum ``s`` when any predicate ``t``
        reads (positively, under negation or inside an aggregate body) is
        one of ``s``'s head predicates.  Strata on the same level of the
        resulting DAG — independent SCC groups of the dependency graph —
        can evaluate concurrently; batches are emitted in level order and
        hold stratum indexes in ascending order, which fixes the merge
        order for parallel execution.
        """
        inputs: list[set[str]] = []
        for info in self._strata:
            preds = set(info.referenced)
            preds.update(neg.atom.predicate for _, _, neg in info.negations)
            for agg_preds in info.agg_inputs.values():
                preds.update(agg_preds)
            inputs.append(preds)
        levels: list[int] = []
        for t in range(len(self._strata)):
            level = 0
            for s in range(t):
                if inputs[t] & self._strata[s].heads:
                    level = max(level, levels[s] + 1)
            levels.append(level)
        batches: dict[int, list[int]] = {}
        for stratum, level in enumerate(levels):
            batches.setdefault(level, []).append(stratum)
        return tuple(tuple(batches[level]) for level in sorted(batches))

    def _negation_trigger_plan(
        self, rule_index: int, rule: CompiledRule, negation: Negation, gain: bool
    ) -> JoinPlan:
        """Delta-first plan reacting to the negated predicate changing.

        *Gain* (the negated predicate acquired tuples): enumerate the
        bindings whose derivations just became invalid — the negated atom
        leads as a positive delta atom and every negation is dropped
        (supports are identified by their positive body rows, so a binding
        that never derived anything is a harmless no-op drop).

        *Loss* (the negated predicate lost tuples): enumerate genuinely new
        derivations — the vanished tuple leads as a positive delta atom
        while the rest of the body, *including* the triggering negation
        (anonymous variables may still be blocked by surviving rows), is
        evaluated against the current store.
        """
        cache = self._gain_plans if gain else self._loss_plans
        key = (rule_index, id(negation))
        plan = cache.get(key)  # type: ignore[arg-type]
        if plan is not None:
            return plan
        if gain:
            literals = [
                literal
                for literal in rule.rule.body
                if not isinstance(literal, Negation)
            ]
            plan, _ = build_join_plan(
                literals,
                first=negation.atom,
                best_effort=True,
                shards=self._plan_shards,
                write_rates=self._write_rates or None,
            )
        else:
            literals = list(rule.rule.body)
            plan, _ = build_join_plan(
                literals,
                first=negation.atom,
                shards=self._plan_shards,
                write_rates=self._write_rates or None,
            )
        self._register_exchange(plan)
        cache[key] = plan  # type: ignore[index]
        return plan

    def _rederive_plan(self, rule_index: int, rule: CompiledRule) -> JoinPlan:
        """The rule body re-planned with the head variables pre-bound, so a
        derivability check probes indexes instead of re-scanning the leading
        relations the original plan assumed unbound."""
        plan = self._rederive_plans.get(rule_index)
        if plan is None:
            head_vars = {
                term.name
                for term in rule.rule.head.terms
                if isinstance(term, Var) and not term.is_anonymous
            }
            plan, _ = build_join_plan(
                rule.rule.body,
                initial_bound=head_vars,
                shards=self._plan_shards,
                write_rates=self._write_rates or None,
            )
            self._register_exchange(plan)
            self._rederive_plans[rule_index] = plan
        return plan

    # -- interval access path ----------------------------------------------
    def _interval_specs_for(self, info: _StratumInfo) -> tuple[IntervalSpec, ...]:
        """The stratum's interval-eligible transitive-closure specs.

        Eligibility is the compile-time syntactic check
        (:func:`~repro.cylog.safety.detect_interval_specs`); whether the
        edge rows actually form a forest is decided per run by the index
        monitor.  The indexes live engine-side and are maintained by the
        serial merge path only, so interval-answered heads never dispatch
        work to the executor pool.
        """
        if not self._interval_enabled or not self._active.interval_specs:
            return ()
        return tuple(
            spec
            for head, spec in sorted(self._active.interval_specs.items())
            if head in info.heads
        )

    def _interval_index_for(self, head: str) -> IntervalHierarchyIndex:
        index = self._interval.get(head)
        if index is None:
            index = self._interval[head] = IntervalHierarchyIndex()
            self._interval_seen[head] = (0, 0)
        return index

    def _interval_fold_stats(
        self, head: str, index: IntervalHierarchyIndex, stats: EngineStats
    ) -> None:
        """Fold the index's cumulative counters into ``stats`` as exact
        increments since the last fold.  Index maintenance is engine-side
        serial work, so the folded counters are identical at any worker
        count on any executor."""
        seen_scans, seen_renumbers = self._interval_seen.get(head, (0, 0))
        stats.interval_scans += index.scans - seen_scans
        stats.interval_renumbers += index.renumbers - seen_renumbers
        self._interval_seen[head] = (index.scans, index.renumbers)

    def _interval_answer_full(
        self, store: RelationStore, spec: IntervalSpec, stats: EngineStats
    ) -> bool:
        """Answer one closure head for a full evaluation.

        Rebuilds the index from the live edge rows and, when they form a
        forest, emits every closure pair as one range scan per node —
        returning True so the caller drops the head's rules from the
        fixpoint.  Interval-owned rows carry *no* supports: the index
        itself produces exact added/removed sets under churn, and the
        support machinery must never cascade rows it does not own.
        """
        index = self._interval_index_for(spec.head)
        edge_rel = store.maybe(spec.edge)
        if edge_rel is not None and edge_rel.arity != 2:
            index.valid = False
            return False  # malformed edge data: the fixpoint path reports it
        rows = sorted(edge_rel.snapshot(), key=repr) if edge_rel is not None else []
        answered = index.rebuild(rows)
        if answered:
            relation = store.get(spec.head, 2)
            for row in index.pairs():
                if relation.add(row):
                    stats.tuples_derived += 1
                    self._note_add(spec.head, row)
        self._interval_fold_stats(spec.head, index, stats)
        return answered

    def _interval_step(
        self,
        store: RelationStore,
        spec: IntervalSpec,
        changes: DeltaLedger,
        sink: DeltaLedger,
        stats: EngineStats,
        removed_out: list[Tuple_],
        added_out: list[Tuple_],
    ) -> bool | None:
        """Advance one closure head through an incremental step.

        Returns True when the head is interval-owned and its exact deltas
        were applied to the store and ``sink`` (and collected into
        ``removed_out`` / ``added_out`` for the caller's cascade/seed
        wiring); False when the head stays on the fixpoint path; ``None``
        when an edge change broke the forest shape mid-step — the caller
        must fall back to a full stratum recompute, which re-decides the
        access path from the rebuilt state.
        """
        index = self._interval_index_for(spec.head)
        edge_removed = changes.removed(spec.edge)
        edge_added = changes.added(spec.edge)
        if not index.valid:
            if not (edge_removed or edge_added):
                return False  # nothing changed; no reason to re-probe
            edge_rel = store.maybe(spec.edge)
            if edge_rel is not None and edge_rel.arity != 2:
                return False
            rows = (
                sorted(edge_rel.snapshot(), key=repr)
                if edge_rel is not None
                else []
            )
            if not index.rebuild(rows):
                self._interval_fold_stats(spec.head, index, stats)
                return False
            # Re-enabling mid-run: the stored closure rows were fixpoint-
            # derived and carry supports the index will not maintain —
            # purge them so no later cascade can delete index-owned rows —
            # then net-diff the stored closure against the rebuilt one.
            # The edge deltas are already in the edge relation, so the
            # diff IS this step's exact delta.
            relation = store.get(spec.head, 2)
            current = relation.snapshot()
            for row in current:
                self._supports.discard_tuple(spec.head, row)
            desired = set(index.pairs())
            self._interval_fold_stats(spec.head, index, stats)
            self._interval_apply(
                store,
                spec,
                current - desired,
                desired - current,
                sink,
                stats,
                removed_out,
                added_out,
            )
            return True
        if not (edge_removed or edge_added):
            return True  # interval-owned and untouched this step
        # Net removals before net additions: any subgraph of a valid final
        # forest is a forest, so a batch that lands on one never trips the
        # monitor spuriously; a batch that does not always trips an op.
        ledger = DeltaLedger()
        for parent, child in sorted(edge_removed, key=repr):
            lost = index.detach(parent, child)
            if lost is None:
                self._interval_fold_stats(spec.head, index, stats)
                return None
            for pair in lost:
                ledger.remove(spec.head, pair)
        for parent, child in sorted(edge_added, key=repr):
            gained = index.attach(parent, child)
            if gained is None:
                self._interval_fold_stats(spec.head, index, stats)
                return None
            for pair in gained:
                ledger.add(spec.head, pair)
        self._interval_fold_stats(spec.head, index, stats)
        self._interval_apply(
            store,
            spec,
            set(ledger.removed(spec.head)),
            set(ledger.added(spec.head)),
            sink,
            stats,
            removed_out,
            added_out,
        )
        return True

    def _interval_apply(
        self,
        store: RelationStore,
        spec: IntervalSpec,
        removed: set[Tuple_],
        added: set[Tuple_],
        sink: DeltaLedger,
        stats: EngineStats,
        removed_out: list[Tuple_],
        added_out: list[Tuple_],
    ) -> None:
        """Apply one interval-computed closure delta to the store, the run
        report and the worker-replica sync stream, in sorted order so the
        reported counters are deterministic."""
        relation = store.get(spec.head, 2)
        for row in sorted(removed, key=repr):
            if relation.discard(row):
                stats.tuples_retracted += 1
                sink.remove(spec.head, row)
                self._note_remove(spec.head, row)
                removed_out.append(row)
        for row in sorted(added, key=repr):
            if relation.add(row):
                stats.tuples_derived += 1
                sink.add(spec.head, row)
                self._note_add(spec.head, row)
                added_out.append(row)

    # -- aggregate maintenance ---------------------------------------------
    def _affected_agg_groups(
        self,
        rule_index: int,
        rule: CompiledRule,
        store: RelationStore,
        changes: DeltaLedger,
        stats: EngineStats,
    ) -> set[Tuple_] | None:
        """Group keys whose aggregate output may have moved, or ``None``
        when the change cannot be localised and the rule must recompute in
        full.

        A single-atom body binds its group keys directly from the changed
        rows.  A join body localises removals through the synthetic group
        supports recorded at evaluation time (which groups consumed the
        removed row) and additions through the rule's delta-first plans
        (every solution a new row participates in names its group).  A
        changed *negated* input stays a full recompute — provenance only
        covers positive rows — as do a degraded synthetic support index
        and the ``legacy`` planner (it compiles no delta-first rewrites).
        """
        body = rule.rule.body
        atoms = [literal for literal in body if isinstance(literal, Atom)]
        for literal in body:
            if isinstance(literal, Negation):
                pred = literal.atom.predicate
                if changes.added(pred) or changes.removed(pred):
                    return None
        group_vars = rule.rule.head.group_by_vars()
        if len(atoms) == 1:
            atom = atoms[0]
            atom_vars = {v.name for v in atom.variables()}
            if any(v.name not in atom_vars for v in group_vars):
                return None
            groups: set[Tuple_] = set()
            for row in (
                *changes.added(atom.predicate),
                *changes.removed(atom.predicate),
            ):
                bindings = _bind_atom(atom, row, {})
                if bindings is not None:
                    groups.add(tuple(bindings[v.name] for v in group_vars))
            return groups
        agg_pred = _agg_support_pred(rule.rule.head.predicate, rule_index)
        if self._supports.degraded_any((agg_pred,)):
            return None  # incomplete provenance could miss a group
        groups = set()
        for atom_pred in sorted({atom.predicate for atom in atoms}):
            for row in changes.removed(atom_pred):
                for ref, _pattern in self._supports.dependents(atom_pred, row):
                    if ref[0] == agg_pred:
                        groups.add(ref[1])
            added = changes.added(atom_pred)
            if not added:
                continue
            delta_rel = _relation_from(set(added), store.maybe(atom_pred))
            localized = False
            for position, step in enumerate(rule.join_plan.steps):
                literal = step.literal
                if not isinstance(literal, Atom) or literal.predicate != atom_pred:
                    continue
                plan = rule.delta_plans.get(position)
                if plan is None:
                    return None  # legacy planner: no delta-first rewrites
                localized = True
                for bindings in solutions(
                    plan,
                    store,
                    delta_position=0,
                    delta_relation=delta_rel,
                    stats=stats,
                ):
                    groups.add(tuple(bindings[v.name] for v in group_vars))
            if not localized:
                return None
        return groups

    def _evaluate_aggregate_tracked(
        self,
        rule_index: int,
        rule: CompiledRule,
        store: RelationStore,
        stats: EngineStats,
    ) -> set[Tuple_]:
        """Full aggregate evaluation that, for join bodies, also records
        one synthetic support per contributing solution — group key ->
        consumed body rows — so later removals localise their affected
        groups through the support index instead of recomputing every
        group (see :meth:`_affected_agg_groups`)."""
        if not _agg_body_is_join(rule):
            return _evaluate_aggregate_rule(rule, store, stats)
        head = rule.rule.head
        agg_pred = _agg_support_pred(head.predicate, rule_index)
        aggregates = head.aggregate_terms()
        group_vars = head.group_by_vars()
        groups: dict[Tuple_, dict[str, set]] = {}
        for bindings in solutions(rule.join_plan, store, stats=stats):
            key = tuple(bindings[v.name] for v in group_vars)
            per_agg = groups.setdefault(
                key, {a.var.name: set() for a in aggregates}
            )
            for aggregate in aggregates:
                per_agg[aggregate.var.name].add(bindings[aggregate.var.name])
            self._record(
                agg_pred, key, support_key_for(rule_index, rule, bindings), stats
            )
        return {
            _fold_aggregate_row(head, key, per_agg)
            for key, per_agg in groups.items()
        }

    def _clear_agg_supports(
        self, rule_index: int, rule: CompiledRule, cached: Iterable[Tuple_]
    ) -> None:
        """Forget a join-body aggregate rule's synthetic group supports.

        The cached output rows name exactly the groups that hold any
        (every group with at least one solution emits a row), so the purge
        is proportional to the rule's live groups, not the support index.
        """
        if not _agg_body_is_join(rule):
            return
        head = rule.rule.head
        agg_pred = _agg_support_pred(head.predicate, rule_index)
        for row in cached:
            self._supports.discard_tuple(agg_pred, _row_group_key(head, row))
        self._supports.clear_degraded((agg_pred,))

    def _evaluate_agg_groups(
        self,
        rule_index: int,
        rule: CompiledRule,
        store: RelationStore,
        groups: set[Tuple_],
        stats: EngineStats,
    ) -> set[Tuple_]:
        """Aggregate output restricted to ``groups``, evaluated through a
        group-key-bound plan (indexed probes, not a full body scan).  For
        join bodies each group's synthetic supports are replaced by the
        surviving solutions' as a side effect."""
        head = rule.rule.head
        group_vars = head.group_by_vars()
        plan = self._agg_group_plans.get(rule_index)
        if plan is None:
            plan, _ = build_join_plan(
                rule.rule.body,
                initial_bound={v.name for v in group_vars},
                shards=self._plan_shards,
                write_rates=self._write_rates or None,
            )
            self._register_exchange(plan)
            self._agg_group_plans[rule_index] = plan
        agg_pred = (
            _agg_support_pred(head.predicate, rule_index)
            if _agg_body_is_join(rule)
            else None
        )
        aggregates = head.aggregate_terms()
        rows: set[Tuple_] = set()
        for group in sorted(groups, key=repr):
            if agg_pred is not None:
                self._supports.discard_tuple(agg_pred, group)
            initial = {v.name: value for v, value in zip(group_vars, group)}
            per_agg: dict[str, set] = {a.var.name: set() for a in aggregates}
            found = False
            for bindings in solutions(plan, store, initial=initial, stats=stats):
                found = True
                if agg_pred is not None:
                    self._record(
                        agg_pred,
                        group,
                        support_key_for(rule_index, rule, bindings),
                        stats,
                    )
                for aggregate in aggregates:
                    per_agg[aggregate.var.name].add(bindings[aggregate.var.name])
            if found:
                rows.add(_fold_aggregate_row(head, group, per_agg))
        return rows

    # -- derivation recording ----------------------------------------------
    def _support_key(
        self, rule_index: int, rule: CompiledRule, bindings: Bindings
    ) -> SupportKey:
        return support_key_for(rule_index, rule, bindings)

    def _record(
        self,
        predicate: str,
        row: Tuple_,
        key: SupportKey,
        stats: EngineStats | None = None,
    ) -> None:
        if self._supports.add(predicate, row, key):
            (stats if stats is not None else self.stats).supports_recorded += 1

    # -- task fan-out ------------------------------------------------------
    def _rule_delta_task(
        self,
        rule_index: int,
        rule: CompiledRule,
        position: int,
        delta_plan: JoinPlan | None,
        delta_rel: Relation,
        store: RelationStore,
    ) -> Callable[[], tuple[list[tuple[Tuple_, SupportKey]], EngineStats]]:
        """One evaluation task: fire ``rule`` against one delta partition.

        The task only *reads* the store and counts work into a scratch
        stats record; the caller merges derived tuples, supports and
        counters serially, which keeps results executor-independent.
        """

        def task() -> tuple[list[tuple[Tuple_, SupportKey]], EngineStats]:
            scratch = EngineStats()
            scratch.shard_tasks = 1
            if delta_plan is not None:
                # Delta-first rewrite: the delta atom leads the join.
                bindings_iter = solutions(
                    delta_plan,
                    store,
                    delta_position=0,
                    delta_relation=delta_rel,
                    stats=scratch,
                )
            else:
                bindings_iter = solutions(
                    rule.join_plan,
                    store,
                    delta_position=position,
                    delta_relation=delta_rel,
                    stats=scratch,
                )
            derived = [
                (_head_tuple(rule, b), self._support_key(rule_index, rule, b))
                for b in bindings_iter
            ]
            return derived, scratch

        return task

    def _semi_naive_rounds(
        self,
        store: RelationStore,
        plain_rules: Sequence[tuple[int, CompiledRule]],
        delta: dict[str, set[Tuple_]],
        changes: DeltaLedger | None = None,
        stats: EngineStats | None = None,
        parallel: bool = True,
    ) -> None:
        """Propagate ``delta`` to fixpoint, recording every derivation.

        Rules fire through their delta-first rewrites for any body atom
        whose predicate has a delta; new head tuples feed the next round
        (and ``changes``, when the caller is tracking a run report).

        Each round builds one task per (rule, delta atom) — split further
        into per-shard delta partitions on a sharded engine, aligned on
        the next probe's shard routing key when the delta plan has one
        (``JoinPlan.route_position``), so every task probes a single
        target shard — evaluates them through the executor when the round
        is big enough to pay for dispatch, and merges the derived tuples
        serially in task order.  On a distributed executor the tasks ship
        as picklable descriptors after the worker replicas are synced.
        """
        if stats is None:
            stats = self.stats
        n_shards = self.shard_config.shards
        use_pool = parallel and self._parallel
        if n_shards > 1:
            from repro.cylog.sharding import split_rows_by_shard
        while delta:
            stats.rounds += 1
            delta_relations = {
                predicate: _relation_from(rows, store.maybe(predicate))
                for predicate, rows in delta.items()
                if rows
            }
            fan_out = use_pool and (
                sum(len(rows) for rows in delta.values())
                >= self.shard_config.min_parallel_rows
            )
            #: (rule, rule_index, position, delta_plan, delta shard — the
            #: shard id the partition's aligned probes land on, ``None``
            #: when unsplit — and the delta partition itself).
            jobs: list[
                tuple[CompiledRule, int, int, JoinPlan | None, int | None, Relation]
            ] = []
            for rule_index, rule in plain_rules:
                for position, step in enumerate(rule.join_plan.steps):
                    literal = step.literal
                    if not isinstance(literal, Atom):
                        continue
                    if literal.predicate not in delta_relations:
                        continue
                    delta_rel = delta_relations[literal.predicate]
                    delta_plan = rule.delta_plans.get(position)
                    stats.rules_fired += 1
                    parts: list[tuple[int | None, Relation]] = [(None, delta_rel)]
                    if fan_out and n_shards > 1 and len(delta_rel) > 1:
                        route = 0
                        if delta_plan is not None and delta_plan.route_position:
                            route = delta_plan.route_position
                        parts = [
                            (shard_id, _relation_from(rows, delta_rel))
                            for shard_id, rows in split_rows_by_shard(
                                delta_rel, n_shards, route
                            )
                        ]
                    for shard_id, part in parts:
                        jobs.append(
                            (rule, rule_index, position, delta_plan, shard_id, part)
                        )
            if fan_out and len(jobs) > 1 and self._distributed:
                from repro.cylog.procpool import ProcessPoolBrokenError

                self._flush_sync()
                try:
                    results = self._executor.run_rule_tasks(  # type: ignore[attr-defined]
                        [
                            (rule_index, position, shard_id, tuple(part))
                            for _, rule_index, position, _, shard_id, part in jobs
                        ]
                    )
                except ProcessPoolBrokenError:
                    # A worker died mid-dispatch.  The replicas only ever
                    # mirrored the engine store, so the same tasks re-run
                    # inline against it are equivalent; finish this and
                    # every later round serially.
                    self._demote_to_serial()
                    results = [
                        self._rule_delta_task(
                            rule_index, rule, position, delta_plan, part, store
                        )()
                        for rule, rule_index, position, delta_plan, _, part in jobs
                    ]
            elif fan_out and len(jobs) > 1:
                results = self._executor.map(
                    [
                        self._rule_delta_task(
                            rule_index, rule, position, delta_plan, part, store
                        )
                        for rule, rule_index, position, delta_plan, _, part in jobs
                    ]
                )
            else:
                results = [
                    self._rule_delta_task(
                        rule_index, rule, position, delta_plan, part, store
                    )()
                    for rule, rule_index, position, delta_plan, _, part in jobs
                ]
            next_delta: dict[str, set[Tuple_]] = {}
            for (rule, *_), (derived, scratch) in zip(jobs, results):
                stats.absorb(scratch)
                head_pred = rule.rule.head.predicate
                relation = store.get(head_pred, rule.rule.head.arity)
                for row, support in derived:
                    self._record(head_pred, row, support, stats)
                    if relation.add(row):
                        stats.tuples_derived += 1
                        self._note_add(head_pred, row)
                        next_delta.setdefault(head_pred, set()).add(row)
                        if changes is not None:
                            changes.add(head_pred, row)
            delta = next_delta

    # -- full evaluation ---------------------------------------------------
    def _full_run(self) -> EvaluationResult:
        self.runs += 1
        self.stats.full_runs += 1
        self._pending = DeltaLedger()  # a from-scratch load covers everything
        self._replan()
        previous = self._store.snapshot() if self._store is not None else {}
        store = self._new_store()
        self._evicted_base += self._supports.evicted
        self._supports = self._new_supports()
        self._agg_cache = {}
        for predicate, rows in self._base_facts.items():
            if not rows:
                continue
            relation = store.get(predicate, len(next(iter(rows))))
            for row in rows:
                relation.add(row)
        # Head relations are created up front so parallel stratum tasks
        # never mutate the store's predicate map concurrently.
        for rule in self._active.rules:
            store.get(rule.rule.head.predicate, rule.rule.head.arity)
        # Worker replicas restart from exactly these base facts; everything
        # derived below streams to them through the unsynced ledger.
        self._reset_workers(store)
        for batch in self._batches:
            if len(batch) == 1 or not self._parallel or self._distributed:
                for index in batch:
                    self._eval_stratum_full(
                        store, self._strata[index], self.stats, parallel=self._parallel
                    )
            else:
                # Independent strata: one task each, scratch stats merged
                # in stratum order.
                def stratum_task(info: _StratumInfo) -> EngineStats:
                    scratch = EngineStats()
                    scratch.shard_tasks = 1
                    self._eval_stratum_full(store, info, scratch, parallel=False)
                    return scratch

                tasks = [
                    partial(stratum_task, self._strata[index]) for index in batch
                ]
                for scratch in self._executor.map(tasks):
                    self.stats.absorb(scratch)
        self._store = store
        current = store.snapshot()
        changes = DeltaLedger()
        for predicate in set(previous) | set(current):
            old = previous.get(predicate, _EMPTY_ROWS)
            new = current.get(predicate, _EMPTY_ROWS)
            for row in new - old:
                changes.add(predicate, row)
            for row in old - new:
                changes.remove(predicate, row)
        added, removed = changes.as_mappings()
        return EvaluationResult(current, added, removed)

    def _eval_stratum_full(
        self,
        store: RelationStore,
        info: _StratumInfo,
        stats: EngineStats,
        parallel: bool = True,
    ) -> None:
        for rule_index, rule in info.aggregates:
            head_pred = rule.rule.head.predicate
            relation = store.get(head_pred, rule.rule.head.arity)
            stats.rules_fired += 1
            stats.agg_recomputes += 1
            out = self._evaluate_aggregate_tracked(rule_index, rule, store, stats)
            self._agg_cache[rule_index] = out
            support: SupportKey = (rule_index, ())
            for row in out:
                self._record(head_pred, row, support, stats)
                if relation.add(row):
                    stats.tuples_derived += 1
                    self._note_add(head_pred, row)
        # Interval-eligible closure heads are answered straight from the
        # hierarchy index when their edge rows form a forest: one range
        # scan per node instead of one join round per level, and their
        # rules drop out of the fixpoint below.
        plain = info.plain
        for spec in self._interval_specs_for(info):
            if self._interval_answer_full(store, spec, stats):
                skip = (spec.base_rule, spec.recursive_rule)
                plain = tuple((i, r) for i, r in plain if i not in skip)
        # Round 0: full evaluation of each rule.  Solutions are materialised
        # before insertion because recursive rules scan the very relation
        # they derive into; on a parallel engine independent rules evaluate
        # concurrently and merge in rule order.
        def round0_task(rule_index: int, rule: CompiledRule):
            def task():
                scratch = EngineStats()
                derived = [
                    (_head_tuple(rule, b), self._support_key(rule_index, rule, b))
                    for b in solutions(rule.join_plan, store, stats=scratch)
                ]
                return derived, scratch

            return task

        if parallel and self._parallel and len(plain) > 1 and self._distributed:
            from repro.cylog.procpool import ProcessPoolBrokenError

            self._flush_sync()
            try:
                results = self._executor.run_rule_tasks(  # type: ignore[attr-defined]
                    [(rule_index, None, None, None) for rule_index, _ in plain]
                )
            except ProcessPoolBrokenError:
                self._demote_to_serial()
                results = [
                    round0_task(rule_index, rule)() for rule_index, rule in plain
                ]
        elif parallel and self._parallel and len(plain) > 1:
            results = self._executor.map(
                [round0_task(rule_index, rule) for rule_index, rule in plain]
            )
        else:
            results = [round0_task(rule_index, rule)() for rule_index, rule in plain]
        delta: dict[str, set[Tuple_]] = {}
        for (rule_index, rule), (derived, scratch) in zip(plain, results):
            stats.absorb(scratch)
            stats.rules_fired += 1
            head_pred = rule.rule.head.predicate
            relation = store.get(head_pred, rule.rule.head.arity)
            for row, support in derived:
                self._record(head_pred, row, support, stats)
                if relation.add(row):
                    stats.tuples_derived += 1
                    self._note_add(head_pred, row)
                    delta.setdefault(head_pred, set()).add(row)
        self._semi_naive_rounds(store, plain, delta, stats=stats, parallel=parallel)

    # -- incremental evaluation --------------------------------------------
    def _incremental_run(self) -> EvaluationResult:
        store = self._store
        assert store is not None
        self.stats.incremental_runs += 1
        # Rates observed over previous runs may have crossed an exchange
        # break-even; replan before propagating so this run's probes
        # already take the cheaper access path.
        self._replan_for_writes()
        pending, self._pending = self._pending, DeltaLedger()
        changes = DeltaLedger()
        for predicate in pending.predicates():
            relation = store.maybe(predicate)
            for row in pending.removed(predicate):
                if relation is not None and relation.discard(row):
                    self.stats.tuples_retracted += 1
                    changes.remove(predicate, row)
                    self._note_remove(predicate, row)
            added = pending.added(predicate)
            if added:
                # store.get re-validates arity, so a row that slipped past
                # the enqueue guard still raises instead of corrupting.
                relation = store.get(predicate, len(next(iter(added))))
                for row in added:
                    if relation.add(row):
                        changes.add(predicate, row)
                        self._note_add(predicate, row)
        for batch in self._batches:
            if len(batch) == 1 or not self._parallel or self._distributed:
                for index in batch:
                    self._step_stratum(
                        store,
                        self._strata[index],
                        changes,
                        self.stats,
                        parallel=self._parallel,
                    )
            else:
                # Independent strata: each task reads the pre-batch change
                # ledger and writes into its own scratch ledger + stats;
                # scratches merge in stratum order (their head predicates
                # are disjoint, so the merge is order-insensitive anyway).
                outs = [DeltaLedger() for _ in batch]
                scratches = [EngineStats() for _ in batch]

                def stratum_task(
                    info: _StratumInfo, out: DeltaLedger, scratch: EngineStats
                ) -> None:
                    self._step_stratum(
                        store, info, changes, scratch, out=out, parallel=False
                    )

                tasks = [
                    partial(stratum_task, self._strata[index], out, scratch)
                    for index, out, scratch in zip(batch, outs, scratches)
                ]
                self._executor.map(tasks)
                for out, scratch in zip(outs, scratches):
                    changes.merge(out)
                    self.stats.absorb(scratch)
        added_map, removed_map = changes.as_mappings()
        self._observe_write_rates(added_map, removed_map)
        return EvaluationResult(store.snapshot(), added_map, removed_map)

    def _recompute_stratum(
        self,
        store: RelationStore,
        info: _StratumInfo,
        sink: DeltaLedger,
        stats: EngineStats,
    ) -> None:
        """Re-derive one stratum from scratch and net-diff into ``sink``.

        The escape hatch for budget-degraded provenance: clear the
        stratum's head relations (and their remaining supports), re-run
        the full per-stratum evaluation against the already-updated lower
        strata, and report only the net row changes.  The stratum's
        provenance is whole again afterwards — until the budget refuses
        another record.
        """
        stats.stratum_recomputes += 1
        before: dict[str, frozenset] = {}
        for predicate in sorted(info.heads):
            relation = store.maybe(predicate)
            if relation is None:
                before[predicate] = frozenset()
                continue
            rows = relation.snapshot()
            before[predicate] = rows
            for row in rows:
                relation.discard(row)
                self._note_remove(predicate, row)
                self._supports.discard_tuple(predicate, row)
        for rule_index, rule in info.aggregates:
            cached = self._agg_cache.pop(rule_index, None)
            if cached:
                self._clear_agg_supports(rule_index, rule, cached)
        self._supports.clear_degraded(info.heads)
        self._eval_stratum_full(store, info, stats, parallel=False)
        for predicate, old_rows in before.items():
            relation = store.maybe(predicate)
            new_rows = relation.snapshot() if relation is not None else frozenset()
            for row in old_rows - new_rows:
                sink.remove(predicate, row)
            for row in new_rows - old_rows:
                sink.add(predicate, row)

    def _step_stratum(
        self,
        store: RelationStore,
        info: _StratumInfo,
        changes: DeltaLedger,
        stats: EngineStats,
        out: DeltaLedger | None = None,
        parallel: bool = True,
    ) -> None:
        """Propagate the accumulated ``changes`` through one stratum.

        ``changes`` is read-only input (base-fact deltas plus everything
        lower batches produced); this stratum's own additions/removals are
        written to ``out`` when given (parallel batches: each stratum task
        gets a scratch ledger merged afterwards) and to ``changes`` itself
        otherwise — same-batch strata never read each other's heads, so
        the two modes are equivalent.
        """
        sink = out if out is not None else changes
        if not info.plain and not info.aggregates:
            return
        touched = set(changes.predicates())
        negated = {negation.atom.predicate for _, _, negation in info.negations}
        agg_touched = {
            index for index, preds in info.agg_inputs.items() if preds & touched
        }
        if not (touched & info.referenced or touched & negated or agg_touched):
            return
        # Degraded provenance (the support budget refused derivations for
        # this stratum's heads) is only unsound for removal-side work: a
        # missing support can make a head tuple wrongly *survive* a
        # cascade, never wrongly die.  When removals, negation gains or
        # aggregate changes reach a degraded stratum, fall back to a full
        # per-stratum recompute; pure additions stay incremental.
        removal_work = (
            any(changes.removed(p) for p in touched & info.referenced)
            or any(changes.added(p) for p in touched & negated)
            or bool(agg_touched)
        )
        if removal_work and self._supports.degraded_any(info.heads):
            self._recompute_stratum(store, info, sink, stats)
            return
        # Interval-owned closure heads step first: the index turns the
        # edge deltas into the head's exact added/removed closure pairs
        # before any fixpoint machinery runs, so the removals can cascade
        # through same-stratum consumers below and the additions seed the
        # propagation.  An edge change that breaks the forest shape falls
        # back to the full per-stratum recompute, which re-decides the
        # access path from the rebuilt state.
        interval_heads: set[str] = set()
        interval_removed: list[tuple[str, Tuple_]] = []
        interval_added: dict[str, list[Tuple_]] = {}
        plain = info.plain
        for spec in self._interval_specs_for(info):
            removed_rows: list[Tuple_] = []
            added_rows: list[Tuple_] = []
            owned = self._interval_step(
                store, spec, changes, sink, stats, removed_rows, added_rows
            )
            if owned is None:
                self._recompute_stratum(store, info, sink, stats)
                return
            if owned:
                interval_heads.add(spec.head)
                plain = tuple(
                    (i, r)
                    for i, r in plain
                    if i not in (spec.base_rule, spec.recursive_rule)
                )
                interval_removed.extend((spec.head, row) for row in removed_rows)
                if added_rows:
                    interval_added[spec.head] = added_rows
        scheduler = RetractionScheduler(
            store, self._supports, info.heads, info.recursive, stats
        )
        # Phase A: aggregates are recompute-and-diff — their inputs live in
        # strictly lower strata, so they are final by now.  When the change
        # is localisable the recompute is restricted to the affected groups.
        agg_additions: list[tuple[CompiledRule, Tuple_, SupportKey]] = []
        for rule_index, rule in info.aggregates:
            if rule_index not in agg_touched:
                continue
            head_pred = rule.rule.head.predicate
            stats.rules_fired += 1
            stats.agg_recomputes += 1
            cached = self._agg_cache.get(rule_index, set())
            groups = self._affected_agg_groups(rule_index, rule, store, changes, stats)
            if groups is None:
                old = cached
                self._clear_agg_supports(rule_index, rule, cached)
                new = self._evaluate_aggregate_tracked(rule_index, rule, store, stats)
                self._agg_cache[rule_index] = new
            elif groups:
                head = rule.rule.head
                old = {row for row in cached if _row_group_key(head, row) in groups}
                new = self._evaluate_agg_groups(rule_index, rule, store, groups, stats)
                self._agg_cache[rule_index] = (cached - old) | new
            else:
                continue
            support: SupportKey = (rule_index, ())
            for row in old - new:
                scheduler.drop_support(head_pred, row, support)
            for row in new - old:
                agg_additions.append((rule, row, support))
        # Phase B: deletions.  Removed input tuples cascade through the
        # support index; negation-gain triggers drop the exact derivations
        # the new tuples invalidate.  Interval-owned heads enqueue from
        # their collected deltas — never from the shared ledger, which
        # only sees them when this stratum writes ``changes`` directly.
        for predicate in changes.predicates():
            if predicate in interval_heads:
                continue
            for row in changes.removed(predicate):
                scheduler.enqueue_removed(predicate, row)
        for predicate, row in interval_removed:
            scheduler.enqueue_removed(predicate, row)
        for rule_index, rule, negation in info.negations:
            gained = changes.added(negation.atom.predicate)
            if not gained:
                continue
            head_pred = rule.rule.head.predicate
            plan = self._negation_trigger_plan(rule_index, rule, negation, gain=True)
            delta_rel = _relation_from(
                set(gained), store.maybe(negation.atom.predicate)
            )
            stats.rules_fired += 1
            # Materialized before dropping: drop_support deletes rows from
            # the store eagerly, and solutions() iterates its live index
            # buckets lazily.
            triggered = list(
                solutions(
                    plan,
                    store,
                    delta_position=0,
                    delta_relation=delta_rel,
                    stats=stats,
                )
            )
            for b in triggered:
                scheduler.drop_support(
                    head_pred,
                    _head_tuple(rule, b),
                    self._support_key(rule_index, rule, b),
                )
        scheduler.run()
        for predicate, row in scheduler.deleted:
            sink.remove(predicate, row)
            self._note_remove(predicate, row)
        # Phase B': re-derivation.  Over-deleted tuples of the recursive
        # component are restored when still derivable from what survived;
        # the addition propagation below rebuilds everything downstream.
        # Restored tuples net out of the run report (their removal is
        # cancelled), so they seed the addition delta explicitly.
        rederived: dict[str, set[Tuple_]] = {}
        for predicate, row in sorted(scheduler.rederive, key=repr):
            relation = store.maybe(predicate)
            if relation is None or row in relation:
                continue
            supports: list[SupportKey] = []
            for rule_index, rule in plain:
                if rule.rule.head.predicate != predicate:
                    continue
                initial = _head_bindings(rule, row)
                if initial is None:
                    continue
                stats.rules_fired += 1
                plan = self._rederive_plan(rule_index, rule)
                for b in solutions(plan, store, initial=initial, stats=stats):
                    if _head_tuple(rule, b) == row:
                        supports.append(self._support_key(rule_index, rule, b))
            for rule_index, rule in info.aggregates:
                if rule.rule.head.predicate == predicate and row in self._agg_cache.get(
                    rule_index, ()
                ):
                    supports.append((rule_index, ()))
            if supports:
                for support in supports:
                    self._record(predicate, row, support, stats)
                store.get(predicate, len(row)).add(row)
                stats.tuples_rederived += 1
                sink.add(predicate, row)
                self._note_add(predicate, row)
                rederived.setdefault(predicate, set()).add(row)
        # Phase C: additions.  Seeds: net-added input tuples, aggregate
        # additions, re-derived tuples and negation-loss derivations.
        delta: dict[str, set[Tuple_]] = {}
        for predicate in changes.predicates():
            if predicate not in info.referenced or predicate in interval_heads:
                continue
            rows = changes.added(predicate)
            if rows:
                delta[predicate] = set(rows)
        # Interval-owned additions only seed the delta when a surviving
        # plain rule actually consumes the head — downstream strata read
        # them from the sink ledger regardless, and seeding an unconsumed
        # head would skew the round counter between serial and parallel
        # batch modes (only serial mode aliases ``sink`` and ``changes``).
        if interval_added:
            consumed = {
                atom.predicate
                for _, rule in plain
                for atom in rule.rule.body_atoms()
            }
            for predicate, rows in interval_added.items():
                if predicate in consumed:
                    delta.setdefault(predicate, set()).update(rows)
        for predicate, rows in rederived.items():
            if predicate in info.referenced:
                delta.setdefault(predicate, set()).update(rows)
        for rule, row, support in agg_additions:
            head_pred = rule.rule.head.predicate
            self._record(head_pred, row, support, stats)
            relation = store.get(head_pred, rule.rule.head.arity)
            if relation.add(row):
                stats.tuples_derived += 1
                sink.add(head_pred, row)
                self._note_add(head_pred, row)
                if head_pred in info.referenced:
                    delta.setdefault(head_pred, set()).add(row)
        for rule_index, rule, negation in info.negations:
            lost = changes.removed(negation.atom.predicate)
            if not lost:
                continue
            head_pred = rule.rule.head.predicate
            relation = store.get(head_pred, rule.rule.head.arity)
            plan = self._negation_trigger_plan(rule_index, rule, negation, gain=False)
            delta_rel = _relation_from(set(lost), store.maybe(negation.atom.predicate))
            stats.rules_fired += 1
            derived = [
                (_head_tuple(rule, b), self._support_key(rule_index, rule, b))
                for b in solutions(
                    plan,
                    store,
                    delta_position=0,
                    delta_relation=delta_rel,
                    stats=stats,
                )
            ]
            for row, support in derived:
                self._record(head_pred, row, support, stats)
                if relation.add(row):
                    stats.tuples_derived += 1
                    sink.add(head_pred, row)
                    self._note_add(head_pred, row)
                    if head_pred in info.referenced:
                        delta.setdefault(head_pred, set()).add(row)
        self._semi_naive_rounds(
            store, plain, delta, sink, stats=stats, parallel=parallel
        )


def _relation_from(rows: set[Tuple_], template: Relation | None) -> Relation:
    arity = template.arity if template is not None else len(next(iter(rows)))
    relation = Relation(arity)
    for row in rows:
        relation.add(row)
    return relation
