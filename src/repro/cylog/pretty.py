"""Pretty-printer: AST back to canonical CyLog source.

``parse_program(program_to_source(p))`` reproduces ``p`` (modulo the raw
``source`` attribute), which the property-based round-trip tests rely on.
"""

from __future__ import annotations

import json

from repro.cylog.ast import (
    AggregateTerm,
    ArithExpr,
    Assignment,
    Atom,
    BinArith,
    BodyLiteral,
    Comparison,
    Const,
    Fact,
    Head,
    Negation,
    OpenDecl,
    Program,
    Rule,
    Var,
)

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def const_to_source(const: Const) -> str:
    if isinstance(const.value, bool):
        return "true" if const.value else "false"
    if isinstance(const.value, str):
        if const.symbol:
            return const.value
        return json.dumps(const.value)
    if isinstance(const.value, float) and const.value == int(const.value):
        return f"{const.value:.1f}"
    return repr(const.value)


def term_to_source(term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return const_to_source(term)
    if isinstance(term, AggregateTerm):
        return f"{term.func}<{term.var.name}>"
    raise TypeError(f"not a term: {term!r}")


def expr_to_source(expr: ArithExpr, parent_precedence: int = 0) -> str:
    if isinstance(expr, BinArith):
        precedence = _PRECEDENCE[expr.op]
        text = (
            f"{expr_to_source(expr.left, precedence)} {expr.op} "
            f"{expr_to_source(expr.right, precedence + 1)}"
        )
        if precedence < parent_precedence:
            return f"({text})"
        return text
    return term_to_source(expr)


def atom_to_source(atom: Atom) -> str:
    if not atom.terms:
        return f"{atom.predicate}()"
    args = ", ".join(term_to_source(t) for t in atom.terms)
    return f"{atom.predicate}({args})"


def head_to_source(head: Head) -> str:
    if not head.terms:
        return f"{head.predicate}()"
    args = ", ".join(term_to_source(t) for t in head.terms)
    return f"{head.predicate}({args})"


def literal_to_source(literal: BodyLiteral) -> str:
    if isinstance(literal, Atom):
        return atom_to_source(literal)
    if isinstance(literal, Negation):
        return f"not {atom_to_source(literal.atom)}"
    if isinstance(literal, Comparison):
        left = expr_to_source(literal.left)
        return f"{left} {literal.op} {expr_to_source(literal.right)}"
    if isinstance(literal, Assignment):
        return f"{literal.var.name} = {expr_to_source(literal.expr)}"
    raise TypeError(f"not a body literal: {literal!r}")


def rule_to_source(rule: Rule) -> str:
    body = ", ".join(literal_to_source(lit) for lit in rule.body)
    return f"{head_to_source(rule.head)} :- {body}."


def fact_to_source(fact: Fact) -> str:
    return f"{atom_to_source(fact.atom)}."


def open_decl_to_source(decl: OpenDecl) -> str:
    params = ", ".join(f"{p.name}: {p.type}" for p in decl.params)
    parts = [f"open {decl.name}({params})"]
    if decl.key:
        parts.append(f"key ({', '.join(decl.key)})")
    if decl.asking is not None:
        parts.append(f"asking {json.dumps(decl.asking)}")
    if decl.choices:
        parts.append(f"choices ({', '.join(const_to_source(c) for c in decl.choices)})")
    return " ".join(parts) + "."


# ---------------------------------------------------------------------------
# Join-plan rendering (duck-typed over safety.JoinPlan to avoid an import
# cycle: safety imports this module for error messages)
# ---------------------------------------------------------------------------


def plan_step_to_source(step) -> str:
    """Render one plan step with its access path annotation.

    On plans compiled for a sharded store, keyed probes additionally show
    their shard routing: ``exchange(p)`` marks a repartition step (the
    probe routes through a re-hashed copy of the relation keyed on term
    position ``p``) and ``chained`` a probe that fans over every shard.
    ``interval`` marks a step whose rule belongs to an interval-answered
    closure: the engine serves the stratum from the
    :class:`~repro.cylog.indexes.IntervalHierarchyIndex` range scans
    while the annotated plan stays behind as the fixpoint fallback.
    """
    base = literal_to_source(step.literal)
    if isinstance(step.literal, (Atom, Negation)):
        if step.index_positions:
            positions = ",".join(str(p) for p in step.index_positions)
            access = f"idx({positions})"
            if getattr(step, "exchange_position", None) is not None:
                access += f" exchange({step.exchange_position})"
            elif getattr(step, "chained", False):
                access += " chained"
            if getattr(step, "interval", False):
                access += " interval"
            return f"{base} [{access}]"
        if getattr(step, "interval", False):
            return f"{base} [scan interval]"
        return f"{base} [scan]"
    return base


def join_plan_to_source(plan) -> str:
    """Render a whole join plan as an annotated body."""
    return ", ".join(plan_step_to_source(step) for step in plan.steps)


def explain_rule(compiled_rule) -> str:
    """Render a compiled rule's plan, including any delta-first rewrites."""
    lines = [
        f"{head_to_source(compiled_rule.rule.head)} :- "
        f"{join_plan_to_source(compiled_rule.join_plan)}."
        f"  % stratum {compiled_rule.stratum}"
    ]
    for position in sorted(compiled_rule.delta_plans):
        delta_plan = compiled_rule.delta_plans[position]
        atom = compiled_rule.join_plan.steps[position].literal
        lines.append(
            f"  delta[{atom_to_source(atom)}]: {join_plan_to_source(delta_plan)}"
        )
    return "\n".join(lines)


def explain_program(compiled) -> str:
    """Render every rule's join plan of a compiled program."""
    return "\n".join(explain_rule(rule) for rule in compiled.rules)


def program_to_source(program: Program) -> str:
    """Render the whole program: opens, then facts, then rules."""
    lines: list[str] = []
    lines.extend(open_decl_to_source(decl) for decl in program.opens)
    lines.extend(fact_to_source(fact) for fact in program.facts)
    lines.extend(rule_to_source(rule) for rule in program.rules)
    return "\n".join(lines) + ("\n" if lines else "")
