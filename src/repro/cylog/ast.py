"""Abstract syntax tree for CyLog programs.

All nodes are immutable dataclasses; structural equality makes parser and
pretty-printer round-trip tests straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.cylog.errors import CyLogTypeError

# ---------------------------------------------------------------------------
# Terms and arithmetic expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A logic variable (``X``, ``Worker``, ``_``).  ``_`` is anonymous:
    every occurrence is distinct and never binds."""

    name: str

    @property
    def is_anonymous(self) -> bool:
        return self.name == "_"


@dataclass(frozen=True)
class Const:
    """A constant: string, symbol, int, float or bool.

    ``symbol`` records whether the constant was written bare (``en``) rather
    than quoted (``"en"``); both compare equal as values but the
    pretty-printer preserves the original spelling.
    """

    value: Union[str, int, float, bool]
    symbol: bool = False


Term = Union[Var, Const]


@dataclass(frozen=True)
class BinArith:
    """Arithmetic expression node: ``left op right`` with op in + - * /."""

    op: str
    left: "ArithExpr"
    right: "ArithExpr"


ArithExpr = Union[Var, Const, BinArith]


def expr_variables(expr: ArithExpr) -> Iterator[Var]:
    """Yield every variable occurring in an arithmetic expression."""
    if isinstance(expr, Var):
        if not expr.is_anonymous:
            yield expr
    elif isinstance(expr, BinArith):
        yield from expr_variables(expr.left)
        yield from expr_variables(expr.right)


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms: ``speaks(W, "en")``."""

    predicate: str
    terms: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Var]:
        for term in self.terms:
            if isinstance(term, Var) and not term.is_anonymous:
                yield term

    def is_ground(self) -> bool:
        return all(isinstance(term, Const) for term in self.terms)


@dataclass(frozen=True)
class Negation:
    """Negated atom: ``not blocked(W)``.  Requires stratification."""

    atom: Atom

    def variables(self) -> Iterator[Var]:
        return self.atom.variables()


@dataclass(frozen=True)
class Comparison:
    """Comparison between arithmetic expressions: ``Age >= 18``."""

    op: str  # one of < <= > >= == !=
    left: ArithExpr
    right: ArithExpr

    def variables(self) -> Iterator[Var]:
        yield from expr_variables(self.left)
        yield from expr_variables(self.right)


@dataclass(frozen=True)
class Assignment:
    """Binding literal ``V = expr``.

    If ``V`` is already bound when the literal is reached it degenerates to
    an equality test, matching Datalog convention.
    """

    var: Var
    expr: ArithExpr

    def variables(self) -> Iterator[Var]:
        yield self.var
        yield from expr_variables(self.expr)


BodyLiteral = Union[Atom, Negation, Comparison, Assignment]


# ---------------------------------------------------------------------------
# Heads, rules, facts, declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateTerm:
    """Aggregate head term such as ``count<X>`` or ``sum<Amount>``."""

    func: str  # count / sum / min / max / avg
    var: Var


HeadTerm = Union[Var, Const, AggregateTerm]


@dataclass(frozen=True)
class Head:
    """Rule head: predicate over head terms (vars, consts, aggregates)."""

    predicate: str
    terms: tuple[HeadTerm, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(term, AggregateTerm) for term in self.terms)

    def group_by_vars(self) -> tuple[Var, ...]:
        """Head variables outside aggregates — the grouping key."""
        return tuple(t for t in self.terms if isinstance(t, Var) and not t.is_anonymous)

    def aggregate_terms(self) -> tuple[AggregateTerm, ...]:
        return tuple(t for t in self.terms if isinstance(t, AggregateTerm))


@dataclass(frozen=True)
class Rule:
    """``head :- body.``"""

    head: Head
    body: tuple[BodyLiteral, ...]

    def body_atoms(self) -> Iterator[Atom]:
        for literal in self.body:
            if isinstance(literal, Atom):
                yield literal
            elif isinstance(literal, Negation):
                yield literal.atom


@dataclass(frozen=True)
class Fact:
    """A ground unit clause: ``segment("s01").``"""

    atom: Atom


@dataclass(frozen=True)
class Param:
    """One column of an open predicate: ``seg: text``."""

    name: str
    type: str  # text / int / float / bool

    VALID_TYPES = ("text", "int", "float", "bool")

    def __post_init__(self) -> None:
        if self.type not in self.VALID_TYPES:
            raise CyLogTypeError(
                f"unknown parameter type {self.type!r} for {self.name!r} "
                f"(expected one of {', '.join(self.VALID_TYPES)})"
            )


@dataclass(frozen=True)
class OpenDecl:
    """Declaration of a human-evaluated predicate.

    ``key`` columns are bound by the engine and identify a task; all other
    columns are *fill* columns answered by workers.  ``asking`` is an
    instruction template with ``{column}`` placeholders; ``choices``
    restricts the (single) fill column to an enumerated answer set.
    """

    name: str
    params: tuple[Param, ...]
    key: tuple[str, ...]
    asking: str | None = None
    choices: tuple[Const, ...] = ()

    def __post_init__(self) -> None:
        param_names = [p.name for p in self.params]
        if len(set(param_names)) != len(param_names):
            raise CyLogTypeError(f"duplicate parameter names in open {self.name!r}")
        for key_col in self.key:
            if key_col not in param_names:
                raise CyLogTypeError(
                    f"open {self.name!r}: key column {key_col!r} is not a parameter"
                )
        if not self.fill_columns:
            raise CyLogTypeError(
                f"open {self.name!r}: every column is a key column; "
                "nothing is left for workers to fill"
            )
        if self.choices and len(self.fill_columns) != 1:
            raise CyLogTypeError(
                f"open {self.name!r}: choices require exactly one fill column"
            )

    @property
    def arity(self) -> int:
        return len(self.params)

    @property
    def fill_columns(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params if p.name not in self.key)

    @property
    def key_positions(self) -> tuple[int, ...]:
        return tuple(i for i, p in enumerate(self.params) if p.name in self.key)

    @property
    def fill_positions(self) -> tuple[int, ...]:
        return tuple(i for i, p in enumerate(self.params) if p.name not in self.key)

    def render_instruction(self, key_values: dict[str, object]) -> str:
        """Fill the ``asking`` template (or a generic default) with values."""
        key_part = (
            " ({})".format(", ".join("{%s}" % k for k in self.key)) if self.key else ""
        )
        template = self.asking or (
            f"Please provide {', '.join(self.fill_columns)} for {self.name}" + key_part
        )
        rendered = template
        for column, value in key_values.items():
            rendered = rendered.replace("{%s}" % column, str(value))
        return rendered


@dataclass(frozen=True)
class Program:
    """A parsed CyLog program."""

    opens: tuple[OpenDecl, ...] = ()
    facts: tuple[Fact, ...] = ()
    rules: tuple[Rule, ...] = ()
    source: str = field(default="", compare=False)

    def open_by_name(self) -> dict[str, OpenDecl]:
        return {decl.name: decl for decl in self.opens}

    def predicates(self) -> set[str]:
        """Every predicate mentioned anywhere in the program."""
        names = {decl.name for decl in self.opens}
        names.update(fact.atom.predicate for fact in self.facts)
        for rule in self.rules:
            names.add(rule.head.predicate)
            names.update(atom.predicate for atom in rule.body_atoms())
        return names

    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one rule head."""
        return {rule.head.predicate for rule in self.rules}
