"""CyLog: the Datalog-like language that drives Crowd4U.

The paper (§2.1) describes CyLog as "a Datalog-like language designed for
crowdsourcing applications with complex data flows" in which *humans can
evaluate predicates*.  A requester writes a project description as CyLog
rules; the CyLog processor interprets them, **dynamically generates tasks
into the task pool**, and folds completed task results back in as facts,
which may trigger further task generation — the engine of the paper's
sequential / hybrid collaboration dataflows.

This package implements the full pipeline:

``lexer`` → ``parser`` → ``safety`` (range restriction, task-safety,
stratification, cost-based join planning) → ``indexes`` (incrementally
maintained multi-key hash indexes) → ``engine`` + ``incremental`` (naive
oracle and a semi-naive engine that stays incremental *across* runs:
retained store, support counting, DRed retraction, per-run
``added``/``removed`` deltas) → ``processor`` (incremental re-evaluation
plus open-predicate task demand, batched fact arrival via
``CyLogProcessor.batch``, answer revocation via ``revoke_answer`` and the
accumulated ``drain_deltas`` change feed).

Engine observability: every :class:`SemiNaiveEngine` (and
:class:`CyLogProcessor` via its ``stats`` property) exposes an
:class:`EngineStats` record — rules fired, tuples joined, index hits, full
scans, semi-naive rounds and the join plans chosen — which plugs into a
:class:`repro.metrics.Collector` through ``EngineStats.to_collector`` and is
reported by ``benchmarks/bench_cylog_engine.py``.

Language summary
----------------

::

    % worker facts are injected by the platform
    open translate(seg: text, out: text) key (seg)
        asking "Translate segment {seg} into French".

    segment("s01"). segment("s02").
    needs_translation(S) :- segment(S).
    translated(S, T) :- needs_translation(S), translate(S, T).
    done(count<S>) :- translated(S, T).

* Predicates are ``lowercase`` identifiers; variables start with an
  uppercase letter or ``_``; constants are numbers, booleans
  (``true``/``false``), double-quoted strings or ``lowercase`` symbols.
* ``open`` declares a *human-evaluated* predicate: the ``key`` columns are
  bound by the engine (they identify a task) and the remaining columns are
  filled in by crowd workers.
* Rule bodies are conjunctions of atoms, ``not`` atoms, comparisons
  (``<  <=  >  >=  ==  !=``) and assignments ``V = expr``.
* Head terms may be aggregates ``count<X>``, ``sum<X>``, ``min<X>``,
  ``max<X>``, ``avg<X>`` grouped by the remaining head variables.
"""

from repro.cylog.ast import (
    AggregateTerm,
    Atom,
    Comparison,
    Const,
    Fact,
    Negation,
    OpenDecl,
    Program,
    Rule,
    Var,
)
from repro.cylog.engine import (
    EngineStats,
    EvaluationResult,
    SemiNaiveEngine,
    naive_evaluate,
)
from repro.cylog.errors import (
    CyLogParseError,
    CyLogSafetyError,
    CyLogTypeError,
    StratificationError,
)
from repro.cylog.indexes import IntervalHierarchyIndex
from repro.cylog.open_predicates import TaskRequest
from repro.cylog.parser import parse_program
from repro.cylog.pretty import explain_program, program_to_source
from repro.cylog.processor import CyLogProcessor
from repro.cylog.safety import IntervalSpec, JoinPlan, PlanStep, compile_program
from repro.cylog.procpool import ProcessExecutor, ProcessPoolBrokenError
from repro.cylog.sharding import (
    ExecutorPolicy,
    SerialExecutor,
    ShardConfig,
    ShardedRelationStore,
    ThreadedExecutor,
    fingerprint_snapshot,
)

__all__ = [
    "AggregateTerm",
    "Atom",
    "Comparison",
    "Const",
    "CyLogParseError",
    "CyLogProcessor",
    "CyLogSafetyError",
    "CyLogTypeError",
    "EngineStats",
    "EvaluationResult",
    "ExecutorPolicy",
    "Fact",
    "IntervalHierarchyIndex",
    "IntervalSpec",
    "JoinPlan",
    "Negation",
    "OpenDecl",
    "PlanStep",
    "ProcessExecutor",
    "ProcessPoolBrokenError",
    "Program",
    "Rule",
    "SemiNaiveEngine",
    "SerialExecutor",
    "ShardConfig",
    "ShardedRelationStore",
    "StratificationError",
    "TaskRequest",
    "ThreadedExecutor",
    "Var",
    "compile_program",
    "explain_program",
    "fingerprint_snapshot",
    "naive_evaluate",
    "parse_program",
    "program_to_source",
]
