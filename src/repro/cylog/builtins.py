"""Runtime evaluation of arithmetic expressions and comparisons.

Semantics (documented for rule authors):

* Arithmetic (``+ - * /``) requires numbers, except ``+`` which also
  concatenates two strings.  Anything else raises :class:`CyLogTypeError`.
* ``==`` / ``!=`` compare any two values (cross-type values are unequal).
* Ordering comparisons (``< <= > >=``) are defined within a type family
  (numbers with numbers, strings with strings); across families they are
  simply *false*, so heterogeneous data filters out instead of crashing a
  running crowdsourcing project.
* Booleans are not numbers in CyLog.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.cylog.ast import ArithExpr, BinArith, Const, Var
from repro.cylog.errors import CyLogTypeError

Value = Any  # str | int | float | bool


def _is_number(value: Value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def eval_expr(expr: ArithExpr, bindings: Mapping[str, Value]) -> Value:
    """Evaluate an arithmetic expression under variable ``bindings``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return bindings[expr.name]
        except KeyError:
            raise CyLogTypeError(
                f"variable {expr.name} is unbound during arithmetic evaluation"
            ) from None
    if isinstance(expr, BinArith):
        left = eval_expr(expr.left, bindings)
        right = eval_expr(expr.right, bindings)
        return apply_arith(expr.op, left, right)
    raise CyLogTypeError(f"not an expression: {expr!r}")


def apply_arith(op: str, left: Value, right: Value) -> Value:
    """Apply one arithmetic operator with CyLog's typing rules."""
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if not (_is_number(left) and _is_number(right)):
        raise CyLogTypeError(
            f"arithmetic {op!r} needs numbers, got {left!r} and {right!r}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise CyLogTypeError("division by zero")
        return left / right
    raise CyLogTypeError(f"unknown arithmetic operator {op!r}")


def apply_comparison(op: str, left: Value, right: Value) -> bool:
    """Apply one comparison operator with CyLog's typing rules."""
    if op == "==":
        return _values_equal(left, right)
    if op == "!=":
        return not _values_equal(left, right)
    if _is_number(left) and _is_number(right):
        pass  # comparable
    elif isinstance(left, str) and isinstance(right, str):
        pass  # comparable
    else:
        return False  # cross-family ordering is false, never an error
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise CyLogTypeError(f"unknown comparison operator {op!r}")


def _values_equal(left: Value, right: Value) -> bool:
    """Equality with bool/number separation (``true != 1`` in CyLog)."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    return left == right
