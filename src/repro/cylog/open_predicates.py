"""Open predicates: the bridge between rules and human workers.

An *open* predicate's facts are produced by people.  The processor computes
the **demand set** of every open predicate — the key bindings required by
some rule body but not yet answered — and materialises each as a
:class:`TaskRequest`.  When an answer arrives the corresponding fact enters
the engine and evaluation continues, possibly demanding further tasks
(this is the paper's "dynamically generates and registers tasks into the
task pool").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cylog.ast import Const, OpenDecl, Var
from repro.cylog.engine import RelationStore, solutions
from repro.cylog.errors import CyLogTypeError
from repro.cylog.safety import CompiledProgram

Tuple_ = tuple[Any, ...]

_PY_TYPES = {
    "text": str,
    "int": int,
    "float": (int, float),
    "bool": bool,
}


@dataclass(frozen=True)
class TaskRequest:
    """A concrete unit of human work demanded by the current database state."""

    predicate: str
    key_values: tuple[Any, ...]
    decl: OpenDecl = field(compare=False)

    @property
    def key_mapping(self) -> dict[str, Any]:
        return dict(zip(self.decl.key, self.key_values))

    @property
    def fill_columns(self) -> tuple[str, ...]:
        return self.decl.fill_columns

    @property
    def choices(self) -> tuple[Any, ...]:
        return tuple(c.value for c in self.decl.choices)

    @property
    def instruction(self) -> str:
        return self.decl.render_instruction(self.key_mapping)

    def build_fact(self, fill_values: Mapping[str, Any]) -> Tuple_:
        """Assemble the full predicate tuple from key + validated answers."""
        return build_open_fact(self.decl, self.key_mapping, fill_values)


def validate_fill_values(decl: OpenDecl, fill_values: Mapping[str, Any]) -> dict:
    """Type-check a worker's answers against the open declaration."""
    missing = set(decl.fill_columns) - set(fill_values)
    if missing:
        raise CyLogTypeError(
            f"answer for {decl.name!r} missing column(s): {sorted(missing)}"
        )
    extra = set(fill_values) - set(decl.fill_columns)
    if extra:
        raise CyLogTypeError(
            f"answer for {decl.name!r} has unexpected column(s): {sorted(extra)}"
        )
    validated: dict[str, Any] = {}
    by_name = {p.name: p for p in decl.params}
    for column, value in fill_values.items():
        expected = _PY_TYPES[by_name[column].type]
        if isinstance(value, bool) and by_name[column].type != "bool":
            raise CyLogTypeError(
                f"{decl.name}.{column}: expected {by_name[column].type}, got bool"
            )
        if not isinstance(value, expected):
            raise CyLogTypeError(
                f"{decl.name}.{column}: expected {by_name[column].type}, "
                f"got {value!r}"
            )
        if by_name[column].type == "float":
            value = float(value)
        validated[column] = value
    if decl.choices:
        answer_column = decl.fill_columns[0]
        allowed = {c.value for c in decl.choices}
        if validated[answer_column] not in allowed:
            raise CyLogTypeError(
                f"{decl.name}.{answer_column}: {validated[answer_column]!r} "
                f"is not one of the declared choices {sorted(allowed, key=repr)}"
            )
    return validated


def build_open_fact(
    decl: OpenDecl, key_values: Mapping[str, Any], fill_values: Mapping[str, Any]
) -> Tuple_:
    """Build the stored tuple in declaration order."""
    validated = validate_fill_values(decl, fill_values)
    row: list[Any] = []
    for param in decl.params:
        if param.name in decl.key:
            row.append(key_values[param.name])
        else:
            row.append(validated[param.name])
    return tuple(row)


def compute_demands(
    compiled: CompiledProgram, store: RelationStore
) -> set[TaskRequest]:
    """Compute the demand set of every open predicate occurrence.

    For each rule and each open atom in it, the seed plan (rest of the body,
    cost-ordered and evaluated best-effort) yields candidate bindings;
    projecting them onto the atom's key positions gives the task keys the
    rule *needs*.  Keys already answered (present among the open
    predicate's facts) are dropped via the predicate's persistent key index
    rather than by materialising the full answered set on every refresh.
    """
    demands: set[TaskRequest] = set()
    for rule in compiled.rules:
        for seed in rule.seed_plans:
            decl = seed.decl
            for bindings in solutions(seed.join_plan, store):
                key = _project_key(seed.open_atom, decl, bindings)
                if key is None or _is_answered(decl, store, key):
                    continue
                demands.add(TaskRequest(predicate=decl.name, key_values=key, decl=decl))
    return demands


def _is_answered(decl: OpenDecl, store: RelationStore, key: Tuple_) -> bool:
    """True when some fact of the open predicate already covers ``key``."""
    relation = store.maybe(decl.name)
    if relation is None:
        return False
    return bool(relation.lookup(tuple(decl.key_positions), key))


def _project_key(atom, decl: OpenDecl, bindings: Mapping[str, Any]):
    key: list[Any] = []
    for position in decl.key_positions:
        term = atom.terms[position]
        if isinstance(term, Const):
            key.append(term.value)
        elif isinstance(term, Var) and term.name in bindings:
            key.append(bindings[term.name])
        else:
            return None  # unbound key (cannot happen for task-safe rules)
    return tuple(key)
