"""CyLog error types, all carrying source positions where available."""

from __future__ import annotations

from repro.errors import CyLogError


class CyLogParseError(CyLogError):
    """Lexical or syntactic error in a CyLog program."""

    def __init__(
        self, message: str, line: int | None = None, column: int | None = None
    ):
        location = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CyLogSafetyError(CyLogError):
    """A rule violates range restriction or open-predicate task-safety."""


class StratificationError(CyLogError):
    """Negation or aggregation occurs inside a recursive cycle."""


class CyLogTypeError(CyLogError):
    """Inconsistent predicate arity or open-predicate schema mismatch."""
