"""Whole-platform integration: several projects, schemes and crowds at once.

This is the closest analogue of the live demo floor: three projects with
different collaboration schemes share one worker population, one affinity
matrix and one task pool, and everything runs to quiescence under the
simulation driver.
"""

import pytest

from repro.apps.common import build_crowd
from repro.apps.journalism import build_journalism_project, journalism_answer_fn
from repro.apps.surveillance import (
    build_surveillance_project,
    surveillance_answer_fn,
)
from repro.apps.translation import (
    build_translation_project,
    translation_answer_fn,
)
from repro.core.tasks import TaskKind
from repro.sim import SimulationDriver
from repro.storage import load_database, save_database


@pytest.fixture(scope="module")
def deployment():
    platform = build_crowd(60, seed=21)
    translation = build_translation_project(platform, ["clipA", "clipB"])
    journalism = build_journalism_project(platform, ["flood watch"])
    surveillance = build_surveillance_project(
        platform, regions=["tsukuba", "paris"], periods=["am"]
    )

    def answers(worker, task):
        project = platform.projects.get(task.project_id)
        if project.id == translation.id:
            return translation_answer_fn(worker, task)
        if project.id == journalism.id:
            return journalism_answer_fn(worker, task)
        return surveillance_answer_fn(worker, task)

    driver = SimulationDriver(platform, answer_fn=answers, seed=21)
    report = driver.run(max_steps=500)
    return platform, (translation, journalism, surveillance), report


class TestConcurrentProjects:
    def test_everything_quiesces(self, deployment):
        _, _, report = deployment
        assert report.quiescent

    def test_all_projects_complete(self, deployment):
        platform, (translation, journalism, surveillance), _ = deployment
        assert len(platform.processor(translation.id).facts("translated")) == 2
        assert len(platform.processor(journalism.id).facts("published")) == 1
        assert len(platform.processor(surveillance.id).facts("dossier")) == 2

    def test_projects_isolated_in_cylog(self, deployment):
        platform, (translation, journalism, _), _ = deployment
        # journalism facts never leak into the translation processor
        assert not platform.processor(translation.id).facts("published")
        assert not platform.processor(journalism.id).facts("translated")

    def test_shared_pool_partitioned_by_project(self, deployment):
        platform, projects, _ = deployment
        for project in projects:
            project_tasks = [
                t for t in platform.pool.all() if t.project_id == project.id
            ]
            assert project_tasks, project.name
            assert all(t.status.value == "completed" for t in project_tasks
                       if t.parent_task_id is None
                       and t.status.value != "expired")

    def test_workers_served_multiple_projects(self, deployment):
        platform, _, _ = deployment
        projects_per_worker: dict[str, set[str]] = {}
        for task in platform.pool.all():
            if task.assignee and task.kind is not TaskKind.JOINT:
                projects_per_worker.setdefault(task.assignee, set()).add(
                    task.project_id
                )
        assert any(len(p) >= 2 for p in projects_per_worker.values())

    def test_event_trail_is_complete(self, deployment):
        platform, _, report = deployment
        assert platform.events.count("task.completed") == report.team_results
        assert platform.events.count("team.proposed") >= report.team_results

    def test_platform_state_survives_persistence(self, deployment, tmp_path):
        platform, _, _ = deployment
        save_database(platform.db, tmp_path / "snapshot")
        restored = load_database(tmp_path / "snapshot")
        assert restored.counts() == platform.db.counts()
        # every persisted team result row is intact
        original = sorted(
            (r["id"] for r in platform.db.table("team_result").rows())
        )
        loaded = sorted(
            (r["id"] for r in restored.table("team_result").rows())
        )
        assert original == loaded

    def test_affinity_learning_occurred(self, deployment):
        platform, _, report = deployment
        assert report.team_results > 0
        assert len(platform.affinity) > 0
