"""Cost-based join planner: atom order, index keys, delta-first rewrites."""

from repro.cylog.ast import Assignment, Atom, Comparison, Negation
from repro.cylog.parser import parse_program
from repro.cylog.pretty import explain_program, explain_rule
from repro.cylog.safety import compile_program


def _first_rule(source, cardinalities=None, planner="cost"):
    compiled = compile_program(
        parse_program(source), cardinalities=cardinalities, planner=planner
    )
    return compiled.rules[0]


def _predicates(join_plan):
    return [
        step.literal.predicate
        for step in join_plan.steps
        if isinstance(step.literal, Atom)
    ]


class TestAtomOrder:
    def test_small_relation_joins_first(self):
        rule = _first_rule(
            "r(X, Y) :- big(X, Y), tiny(X, Y).",
            cardinalities={"big": 10_000.0, "tiny": 3.0},
        )
        assert _predicates(rule.join_plan) == ["tiny", "big"]

    def test_fact_counts_are_the_default_cardinalities(self):
        source = (
            "big(1, 1). big(1, 2). big(2, 1). big(2, 2). big(3, 3).\n"
            "tiny(1, 1).\n"
            "r(X, Y) :- big(X, Y), tiny(X, Y)."
        )
        rule = _first_rule(source)
        assert _predicates(rule.join_plan) == ["tiny", "big"]

    def test_bound_atom_preferred_over_equal_cardinality_scan(self):
        # b("k", X) has a constant bound term, so its estimated cost is a
        # tenth of a's; it leads even though both relations are unknown.
        rule = _first_rule('r(X) :- a(X), b("k", X).')
        assert _predicates(rule.join_plan) == ["b", "a"]

    def test_negation_runs_after_its_binder_and_before_later_atoms(self):
        rule = _first_rule(
            "a(X) :- b(X), not c(X), d(X).",
            cardinalities={"b": 10.0, "d": 10.0},
        )
        kinds = [type(step.literal) for step in rule.join_plan.steps]
        assert kinds.index(Negation) > 0  # never first: needs X bound
        negation_step = rule.join_plan.steps[kinds.index(Negation)]
        assert negation_step.index_positions == (0,)

    def test_filters_placed_as_soon_as_ready(self):
        rule = _first_rule("a(X) :- X > 2, b(X).")
        assert isinstance(rule.join_plan.steps[0].literal, Atom)
        assert isinstance(rule.join_plan.steps[1].literal, Comparison)

    def test_assignment_ordering_preserved(self):
        rule = _first_rule("a(X, Y) :- b(X), Y = X + 1.")
        assert isinstance(rule.join_plan.steps[1].literal, Assignment)

    def test_aggregate_rule_planned_in_higher_stratum(self):
        compiled = compile_program(
            parse_program("n(G, count<X>) :- member(G, X).")
        )
        rule = compiled.rules[0]
        assert rule.stratum == 1
        assert _predicates(rule.join_plan) == ["member"]


class TestIndexKeys:
    def test_join_variable_becomes_index_key(self):
        rule = _first_rule(
            "r(X, Y) :- a(X), b(X, Y).", cardinalities={"a": 1.0, "b": 100.0}
        )
        steps = rule.join_plan.steps
        assert steps[0].literal.predicate == "a"
        assert steps[0].index_positions == ()  # leading atom scans
        assert steps[1].literal.predicate == "b"
        assert steps[1].index_positions == (0,)  # probed on the bound X

    def test_constant_positions_indexed(self):
        rule = _first_rule('r(X) :- likes(X, "tea").')
        assert rule.join_plan.steps[0].index_positions == (1,)

    def test_repeated_fresh_variable_not_indexed(self):
        # p(X, X): neither occurrence is bound beforehand; equality is
        # enforced while binding, not via the index key.
        rule = _first_rule("diag(X) :- p(X, X).")
        assert rule.join_plan.steps[0].index_positions == ()

    def test_index_specs_cover_plan_and_open_keys(self):
        compiled = compile_program(parse_program(
            "open t(seg: text, out: text) key (seg).\n"
            "r(S, T) :- seed(S), t(S, T)."
        ))
        specs = compiled.index_specs()
        assert (0,) in specs["t"]  # both the join probe and the answer key


class TestDeltaPlans:
    def test_right_recursion_rewritten_delta_first(self):
        rule = _first_rule(
            "reach(S, Y) :- link(X, Y), reach(S, X).",
            cardinalities={"link": 10_000.0},
        )
        [reach_position] = [
            position
            for position, step in enumerate(rule.join_plan.steps)
            if isinstance(step.literal, Atom)
            and step.literal.predicate == "reach"
        ]
        delta_plan = rule.delta_plans[reach_position]
        assert delta_plan.steps[0].literal.predicate == "reach"
        assert delta_plan.steps[0].index_positions == ()  # the delta is scanned
        assert delta_plan.steps[1].literal.predicate == "link"
        assert delta_plan.steps[1].index_positions == (0,)  # probed on X

    def test_every_positive_atom_gets_a_delta_plan(self):
        rule = _first_rule("p(X, Y) :- e(X, Z), f(Z, Y), X != Y.")
        atom_positions = {
            position
            for position, step in enumerate(rule.join_plan.steps)
            if isinstance(step.literal, Atom)
        }
        assert set(rule.delta_plans) == atom_positions

    def test_legacy_planner_emits_no_delta_plans(self):
        rule = _first_rule(
            "reach(S, Y) :- link(X, Y), reach(S, X).", planner="legacy"
        )
        assert rule.delta_plans == {}

    def test_legacy_planner_keeps_bound_count_order(self):
        rule = _first_rule(
            "r(X, Y) :- big(X, Y), tiny(X, Y).",
            cardinalities={"big": 10_000.0, "tiny": 3.0},
            planner="legacy",
        )
        assert _predicates(rule.join_plan) == ["big", "tiny"]  # textual tie


class TestExchangePlanning:
    """The exchange operator's planner half: shard-aware compilation."""

    JOIN = "j(L, R) :- left(L, K), right(R, K)."

    def _compiled(self, source, shards, cardinalities=None):
        return compile_program(
            parse_program(source), cardinalities=cardinalities, shards=shards
        )

    def test_single_store_plans_carry_no_exchange(self):
        compiled = self._compiled(self.JOIN, shards=1)
        for step in compiled.rules[0].join_plan.steps:
            assert step.exchange_position is None
            assert not step.chained
        assert compiled.repartition_specs() == {}
        assert compiled.shards == 1

    def test_non_prefix_probe_becomes_exchange_step(self):
        compiled = self._compiled(self.JOIN, shards=8)
        probe = compiled.rules[0].join_plan.steps[1]
        assert probe.index_positions == (1,)
        assert probe.exchange_position == 1
        assert not probe.chained
        assert compiled.repartition_specs() == {"left": {1}, "right": {1}}

    def test_prefix_aligned_probe_needs_no_exchange(self):
        compiled = self._compiled("j(X, Y) :- a(X), b(X, Y).", shards=8)
        for rule in compiled.rules:
            for step in rule.join_plan.steps:
                assert step.exchange_position is None
        assert compiled.repartition_specs() == {}

    def test_tiny_probe_count_prefers_chained(self):
        # One estimated binding probing a huge relation: the chained
        # overhead never amortises a repartitioned copy.
        compiled = self._compiled(
            "j(L, R) :- left(L, K), right(R, K).",
            shards=2,
            cardinalities={"left": 1.0, "right": 1_000_000.0},
        )
        probe = compiled.rules[0].join_plan.steps[1]
        assert probe.exchange_position is None
        assert probe.chained

    def test_delta_plans_carry_shard_alignment_route(self):
        compiled = self._compiled(self.JOIN, shards=8)
        rule = compiled.rules[0]
        # Delta on left(L, K): the next probe routes on K, bound at
        # position 1 of the leading delta atom.
        for position, step in enumerate(rule.join_plan.steps):
            delta_plan = rule.delta_plans[position]
            assert delta_plan.route_position == 1, step

    def test_ordering_is_shard_independent(self):
        source = "r(X, Z) :- a(X, Y), b(Y, Z), c(Z, X), X != Z."
        cards = {"a": 100.0, "b": 10.0, "c": 1000.0}
        single = self._compiled(source, 1, cards).rules[0]
        sharded = self._compiled(source, 8, cards).rules[0]
        assert _predicates(single.join_plan) == _predicates(sharded.join_plan)
        for lone, sharded_step in zip(single.join_plan.steps, sharded.join_plan.steps):
            assert lone.index_positions == sharded_step.index_positions


class TestWriteAwareCosting:
    """The exchange cost model's write-aware half: observed per-relation
    delta inflow replaces the static amortization window."""

    JOIN = "j(L, R) :- left(L, K), right(R, K)."

    def _probe(self, write_rates=None, cardinalities=None):
        compiled = compile_program(
            parse_program(self.JOIN),
            cardinalities=cardinalities,
            shards=8,
            write_rates=write_rates,
        )
        return compiled.rules[0].join_plan.steps[1]

    def test_exchange_steps_record_break_even(self):
        probe = self._probe()
        assert probe.exchange_position == 1
        # inflow × (shards-1) × CHAINED_PROBE_OVERHEAD / REPARTITION_ROW_COST
        assert probe.exchange_break_even is not None
        assert probe.exchange_break_even > 0

    def test_hot_writes_demote_repartition_to_chained(self):
        cold = self._probe()
        hot = self._probe(write_rates={cold.literal.predicate: 1e9})
        assert cold.exchange_position == 1
        assert hot.exchange_position is None
        assert hot.chained

    def test_cold_writes_keep_repartition(self):
        probe = self._probe(write_rates={"right": 0.01})
        assert probe.exchange_position == 1
        assert not probe.chained

    def test_observed_rate_overrides_static_amortization(self):
        # Static heuristic says chained (tiny inflow, huge relation); a
        # near-zero observed write rate makes the repartition almost free
        # and promotes it back to exchange.
        cards = {"left": 1.0, "right": 1_000_000.0}
        static = self._probe(cardinalities=cards)
        assert static.chained
        promoted = self._probe(cardinalities=cards, write_rates={"right": 0.001})
        assert promoted.exchange_position == 1
        assert not promoted.chained


class TestExplain:
    def test_explain_rule_shows_access_paths(self):
        rule = _first_rule("r(X, Y) :- a(X), b(X, Y).")
        text = explain_rule(rule)
        assert "[scan]" in text
        assert "[idx(0)]" in text
        assert "delta[" in text

    def test_explain_rule_shows_exchange_and_chained_paths(self):
        compiled = compile_program(
            parse_program("j(L, R) :- left(L, K), right(R, K)."), shards=8
        )
        assert "exchange(1)" in explain_rule(compiled.rules[0])
        chained = compile_program(
            parse_program("j(L, R) :- left(L, K), right(R, K)."),
            cardinalities={"left": 1.0, "right": 1_000_000.0},
            shards=2,
        )
        assert "chained" in explain_rule(chained.rules[0])

    def test_explain_program_covers_every_rule(self):
        compiled = compile_program(parse_program(
            "p(X) :- a(X).\nq(X) :- b(X)."
        ))
        text = explain_program(compiled)
        assert text.count(":-") == 2
