"""Unit tests for the interval hierarchy index and its engine wiring.

Covers the edge cases the diff oracles can only hit probabilistically:
retractions that split a tree into a forest, re-attachment under the same
run, the churn-threshold label rebuild, sound disable on every non-forest
shape, and the planner/pretty-print/stats surface of the ``interval``
access path.
"""

from __future__ import annotations

import pytest

from repro.cylog import (
    IntervalHierarchyIndex,
    SemiNaiveEngine,
    ShardConfig,
    compile_program,
    explain_program,
    parse_program,
)
from repro.metrics import format_stats_table

TC_SOURCE = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
"""


def closure(edges: list[tuple]) -> set[tuple]:
    """Reference transitive closure by naive fixpoint."""
    pairs = set(edges)
    while True:
        new = {(a, d) for a, b in pairs for c, d in pairs if b == c} - pairs
        if not new:
            return pairs
        pairs |= new


def build(edges: list[tuple]) -> IntervalHierarchyIndex:
    index = IntervalHierarchyIndex()
    assert index.rebuild(edges)
    return index


class TestIntervalIndex:
    def test_build_annotations_and_closure(self):
        #      1            7
        #     / \           |
        #    2   3          8
        #       / \
        #      4   5
        edges = [(1, 2), (1, 3), (3, 4), (3, 5), (7, 8)]
        index = build(edges)
        assert len(index) == 7
        assert index.edge_count == 5
        assert index.level(1) == 0 and index.level(4) == 2 and index.level(8) == 1
        assert index.subtree_size(1) == 5 and index.subtree_size(3) == 3
        assert index.is_ancestor(1, 5) and not index.is_ancestor(1, 8)
        assert not index.is_ancestor(4, 4)  # strict
        assert sorted(index.descendants(3), key=repr) == [4, 5]
        assert set(index.pairs()) == closure(edges)

    def test_interval_containment(self):
        index = build([(1, 2), (2, 3)])
        lo1, hi1 = index.interval(1)
        lo2, hi2 = index.interval(2)
        lo3, hi3 = index.interval(3)
        assert lo1 < lo2 < lo3 < hi3 < hi2 < hi1
        assert index.interval("missing") is None

    def test_attach_returns_exact_gained_pairs(self):
        index = build([(1, 2), (3, 4)])
        gained = index.attach(2, 3)
        # {2, 1} x {3, 4}
        assert sorted(gained) == [(1, 3), (1, 4), (2, 3), (2, 4)]
        assert set(index.pairs()) == closure([(1, 2), (3, 4), (2, 3)])
        assert index.attach(2, 3) == []  # already indexed: no-op

    def test_detach_splits_into_forest_and_stays_valid(self):
        edges = [(1, 2), (2, 3), (3, 4), (3, 5)]
        index = build(edges)
        lost = index.detach(2, 3)
        # {2, 1} x {3, 4, 5}
        assert sorted(lost) == [(1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)]
        assert index.valid  # two trees now: still a forest
        assert set(index.pairs()) == closure([(1, 2), (3, 4), (3, 5)])
        assert index.level(3) == 0  # detached subtree re-rooted
        assert index.subtree_size(3) == 3

    def test_reattach_after_detach_same_run(self):
        edges = [(1, 2), (2, 3), (3, 4)]
        index = build(edges)
        index.detach(1, 2)
        # 2's subtree was detached with 3 and 4 still inside it, so
        # re-attaching 2 under its own descendant 4 would form a cycle.
        gained = index.attach(4, 2)
        assert gained is None  # cycle refused
        assert not index.valid
        assert index.rebuild([(1, 2), (2, 3), (3, 4)])
        index.detach(2, 3)
        gained = index.attach(1, 3)  # legal re-attach elsewhere
        assert sorted(gained) == [(1, 3), (1, 4)]
        assert set(index.pairs()) == closure([(1, 2), (1, 3), (3, 4)])

    @pytest.mark.parametrize(
        "edges",
        [
            [(1, 1)],  # self-loop
            [(1, 2), (3, 2)],  # second parent
            [(1, 2), (2, 3), (3, 1)],  # rootless cycle
        ],
    )
    def test_rebuild_refuses_non_forest(self, edges):
        index = IntervalHierarchyIndex()
        assert not index.rebuild(edges)
        assert not index.valid
        assert len(index) == 0 and index.edge_count == 0

    def test_attach_refuses_non_forest(self):
        index = build([(1, 2), (2, 3)])
        assert index.attach(4, 4) is None  # self-loop
        index = build([(1, 2), (2, 3)])
        assert index.attach(4, 3) is None  # second parent
        index = build([(1, 2), (2, 3)])
        assert index.attach(3, 1) is None  # cycle
        assert not index.valid

    def test_detach_unknown_edge_refuses(self):
        index = build([(1, 2)])
        assert index.detach(2, 1) is None

    def test_bool_int_conflation_matches_python_equality(self):
        # 1 == True in Python but the index must keep them distinct nodes,
        # exactly like relation rows do.
        index = build([(True, 1), (1, 0), (0, False)])
        assert set(index.pairs()) == closure([(True, 1), (1, 0), (0, False)])
        assert index.level(True) == 0 and index.level(False) == 3

    def test_gap_allocation_keeps_appends_cheap(self):
        # After a build every node's interval has GAP slack, so attaching
        # one fresh leaf under each existing node relabels nothing beyond
        # the leaf itself.
        index = build([(i, i + 1) for i in range(50)])
        for i in range(50):
            assert index.attach(i, 1000 + i) is not None
        assert index.renumbers == 0
        assert index.rebuilds == 1  # only the initial build

    def test_churn_threshold_triggers_rebuild(self):
        # Repeatedly moving a large subtree between two tiny anchors burns
        # label slack until cumulative churn crosses REBUILD_CHURN x nodes.
        index = build([(0, 1), (0, 2)] + [(3, i) for i in range(4, 30)])
        index.attach(1, 3)
        moves = 0
        while index.rebuilds < 2 and moves < 200:
            src, dst = (1, 2) if moves % 2 == 0 else (2, 1)
            assert index.detach(src, 3) is not None
            assert index.attach(dst, 3) is not None
            moves += 1
        assert index.rebuilds >= 2  # churn-triggered full relabel happened
        assert set(index.descendants(0)) == set(range(1, 30))

    def test_descendants_is_a_single_range_scan(self):
        index = build([(0, i) for i in range(1, 10)])
        before = index.scans
        index.descendants(0)
        assert index.scans == before + 1


class TestEngineWiring:
    def test_planner_detects_and_annotates_interval(self):
        compiled = compile_program(parse_program(TC_SOURCE))
        assert set(compiled.interval_specs) == {"tc"}
        spec = compiled.interval_specs["tc"]
        assert spec.edge == "edge"
        rendered = explain_program(compiled)
        assert "interval" in rendered

    def test_interval_knob_off_disables_detection(self):
        compiled = compile_program(parse_program(TC_SOURCE), interval=False)
        assert compiled.interval_specs == {}
        assert "interval" not in explain_program(compiled)

    def test_ineligible_shapes_not_detected(self):
        for source in (
            "tc(X, Y) :- edge(X, Y).",  # no recursive rule
            TC_SOURCE + "tc(X, X) :- node(X).",  # third rule
            # non-linear recursion
            "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), tc(Y, Z).",
            # edge fed from the same stratum as the closure
            "edge(X, Y) :- tc(X, Y), flag(X).\n" + TC_SOURCE,
        ):
            compiled = compile_program(parse_program(source))
            assert compiled.interval_specs == {}, source

    def test_stats_counters_reported(self):
        engine = SemiNaiveEngine(parse_program(TC_SOURCE))
        engine.add_facts("edge", [(i, i + 1) for i in range(10)])
        engine.run()
        stats = engine.stats.as_dict()
        assert stats["interval_scans"] > 0
        assert "interval_renumbers" in stats
        table = format_stats_table({"cylog_engine": stats})
        assert "interval_scans" in table

    def test_forest_split_keeps_interval_path(self):
        engine = SemiNaiveEngine(parse_program(TC_SOURCE))
        engine.add_facts("edge", [(1, 2), (2, 3), (3, 4)])
        engine.run()
        scans = engine.stats.interval_scans
        engine.retract_facts("edge", [(2, 3)])
        result = engine.run()
        assert engine.stats.interval_scans > scans  # still interval-answered
        assert sorted(result.removed("tc"), key=repr) == [
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
        ]

    def test_non_forest_falls_back_and_recovers(self):
        program = parse_program(TC_SOURCE)
        engine = SemiNaiveEngine(program)
        engine.add_facts("edge", [(1, 2), (2, 3)])
        engine.run()
        engine.add_facts("edge", [(3, 1)])  # cycle
        cycled = engine.run()
        oracle = SemiNaiveEngine(program, shard_config=ShardConfig(interval=False))
        oracle.add_facts("edge", [(1, 2), (2, 3), (3, 1)])
        assert cycled.facts("tc") == oracle.run().facts("tc")
        engine.retract_facts("edge", [(3, 1)])  # heal
        scans = engine.stats.interval_scans
        healed = engine.run()
        assert engine.stats.interval_scans > scans  # path re-engaged
        assert healed.facts("tc") == frozenset({(1, 2), (1, 3), (2, 3)})
