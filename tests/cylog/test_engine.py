"""Evaluation engine semantics: both naive and semi-naive."""

import pytest

from repro.cylog.engine import Relation, SemiNaiveEngine, naive_evaluate
from repro.cylog.errors import CyLogTypeError
from repro.cylog.parser import parse_program

TRANSITIVE = """
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 2).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
"""


@pytest.fixture(params=["naive", "semi"])
def evaluate(request):
    """Run the same assertions against both engines."""
    def run(source, extra=None):
        program = parse_program(source)
        if request.param == "naive":
            return naive_evaluate(program, extra)
        engine = SemiNaiveEngine(program)
        if extra:
            for pred, rows in extra.items():
                engine.add_facts(pred, rows)
        return engine.run()
    return run


class TestCoreSemantics:
    def test_transitive_closure(self, evaluate):
        result = evaluate(TRANSITIVE)
        paths = result.facts("path")
        assert (1, 4) in paths
        assert (2, 2) in paths  # cycle 2->3->4->2
        assert len(paths) == 12

    def test_join_with_constants(self, evaluate):
        result = evaluate("""
            likes("ann", "tea"). likes("bob", "tea"). likes("cat", "mice").
            tea_person(X) :- likes(X, "tea").
        """)
        assert result.facts("tea_person") == {("ann",), ("bob",)}

    def test_repeated_variable_in_atom(self, evaluate):
        result = evaluate("""
            p(1, 1). p(1, 2). p(3, 3).
            diag(X) :- p(X, X).
        """)
        assert result.facts("diag") == {(1,), (3,)}

    def test_negation(self, evaluate):
        result = evaluate("""
            person("a"). person("b").
            happy("a").
            sad(X) :- person(X), not happy(X).
        """)
        assert result.facts("sad") == {("b",)}

    def test_negation_with_wildcard(self, evaluate):
        result = evaluate("""
            person("a"). person("b").
            likes("a", "b").
            loner(X) :- person(X), not likes(X, _).
        """)
        assert result.facts("loner") == {("b",)}

    def test_comparison_filters(self, evaluate):
        result = evaluate("""
            age("a", 20). age("b", 15).
            adult(X) :- age(X, A), A >= 18.
        """)
        assert result.facts("adult") == {("a",)}

    def test_assignment_computes(self, evaluate):
        result = evaluate("""
            price("x", 10). price("y", 4).
            doubled(P, D) :- price(P, V), D = V * 2.
        """)
        assert result.facts("doubled") == {("x", 20), ("y", 8)}

    def test_assignment_as_equality_check(self, evaluate):
        result = evaluate("""
            p(2, 4). p(3, 5).
            matches(X) :- p(X, Y), Y = X * 2.
        """)
        assert result.facts("matches") == {(2,)}

    def test_extra_facts_injection(self, evaluate):
        result = evaluate(
            "reachable(X, Y) :- link(X, Y).",
            extra={"link": [("a", "b"), ("b", "c")]},
        )
        assert result.count("reachable") == 2

    def test_empty_relation_is_empty_frozenset(self, evaluate):
        result = evaluate("p(1).")
        assert result.facts("unknown") == frozenset()

    def test_zero_arity_predicates(self, evaluate):
        result = evaluate("""
            go().
            ready() :- go().
        """)
        assert result.facts("ready") == {()}


class TestAggregates:
    def test_count_groups(self, evaluate):
        result = evaluate("""
            speaks("a", "en"). speaks("b", "en"). speaks("c", "fr").
            per_lang(L, count<W>) :- speaks(W, L).
        """)
        assert result.facts("per_lang") == {("en", 2), ("fr", 1)}

    def test_sum_min_max_avg(self, evaluate):
        result = evaluate("""
            score("t", 10). score("t", 20). score("u", 5).
            stats(G, sum<S>, min<S>, max<S>, avg<S>) :- score(G, S).
        """)
        assert ("t", 30, 10, 20, 15.0) in result.facts("stats")
        assert ("u", 5, 5, 5, 5.0) in result.facts("stats")

    def test_count_distinct_semantics(self, evaluate):
        # b appears via two different justifications but counts once.
        result = evaluate("""
            p("x", "b"). q("y", "b").
            has(V) :- p(_, V).
            has(V) :- q(_, V).
            n(count<V>) :- has(V).
        """)
        assert result.facts("n") == {(1,)}

    def test_global_aggregate_no_group(self, evaluate):
        result = evaluate("""
            v(1). v(2). v(3).
            total(sum<X>) :- v(X).
        """)
        assert result.facts("total") == {(6,)}

    def test_aggregate_feeding_rule(self, evaluate):
        result = evaluate("""
            member("g1", "a"). member("g1", "b"). member("g2", "c").
            size(G, count<M>) :- member(G, M).
            big(G) :- size(G, N), N >= 2.
        """)
        assert result.facts("big") == {("g1",)}

    def test_aggregate_over_non_numeric_rejected(self, evaluate):
        with pytest.raises(CyLogTypeError):
            evaluate("""
                word("a"). word("b").
                t(sum<W>) :- word(W).
            """)


class TestIncremental:
    def test_monotone_continuation_equals_recompute(self):
        program = parse_program(TRANSITIVE)
        engine = SemiNaiveEngine(program)
        engine.run()
        engine.add_facts("edge", [(4, 5), (5, 6)])
        incremental = engine.run().facts("path")
        oracle = naive_evaluate(
            program, {"edge": [(4, 5), (5, 6)]}
        ).facts("path")
        assert incremental == oracle
        assert engine.runs == 1  # the continuation did not re-run from scratch

    def test_nonmonotone_updates_stay_incremental(self):
        """A fact arriving under negation retracts the defeated derivation
        in place — no full recomputation, and the run reports the delta."""
        program = parse_program("""
            p(1).
            only(X) :- p(X), not q(X).
        """)
        engine = SemiNaiveEngine(program)
        assert engine.run().facts("only") == {(1,)}
        engine.add_facts("q", [(1,)])
        result = engine.run()
        assert result.facts("only") == frozenset()
        assert result.removed("only") == {(1,)}
        assert result.added("q") == {(1,)}
        assert engine.runs == 1  # the update did not re-run from scratch
        assert engine.stats.incremental_runs == 1

    def test_duplicate_facts_not_counted(self):
        engine = SemiNaiveEngine(parse_program("p(X) :- base(X)."))
        assert engine.add_facts("base", [(1,), (1,)]) == 1
        assert engine.add_facts("base", [(1,)]) == 0

    def test_idb_facts_rejected(self):
        engine = SemiNaiveEngine(parse_program("p(X) :- base(X)."))
        with pytest.raises(CyLogTypeError, match="derived"):
            engine.add_facts("p", [(1,)])

    def test_facts_accessor_runs_lazily(self):
        engine = SemiNaiveEngine(parse_program("p(1). q(X) :- p(X)."))
        assert engine.facts("q") == {(1,)}


class TestRelation:
    def test_match_wildcards(self):
        relation = Relation(3)
        relation.add((1, "a", True))
        relation.add((1, "b", False))
        relation.add((2, "a", True))
        assert set(relation.match((1, None, None))) == {
            (1, "a", True), (1, "b", False),
        }
        assert set(relation.match((None, "a", None))) == {
            (1, "a", True), (2, "a", True),
        }
        assert set(relation.match((None, None, None))) == set(relation)

    def test_index_maintained_after_build(self):
        relation = Relation(2)
        relation.add((1, "x"))
        _ = list(relation.match((1, None)))  # build the index
        relation.add((1, "y"))
        assert set(relation.match((1, None))) == {(1, "x"), (1, "y")}

    def test_add_is_idempotent(self):
        relation = Relation(1)
        assert relation.add((1,)) is True
        assert relation.add((1,)) is False
        assert len(relation) == 1
