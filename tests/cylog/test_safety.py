"""Safety, task-safety and stratification analysis."""

import pytest

from repro.cylog.errors import CyLogSafetyError, StratificationError
from repro.cylog.parser import parse_program
from repro.cylog.safety import compile_program, stratify


class TestRangeRestriction:
    def test_head_variable_must_be_bound(self):
        with pytest.raises(CyLogSafetyError, match="head variable"):
            compile_program(parse_program("a(X, Y) :- b(X)."))

    def test_negation_variables_must_be_bound(self):
        with pytest.raises(CyLogSafetyError, match="never bound"):
            compile_program(parse_program("a(X) :- b(X), not c(Y)."))

    def test_comparison_variables_must_be_bound(self):
        with pytest.raises(CyLogSafetyError, match="never bound"):
            compile_program(parse_program("a(X) :- b(X), Y > 3."))

    def test_assignment_binds(self):
        compiled = compile_program(parse_program("a(X, Y) :- b(X), Y = X + 1."))
        assert compiled.rules[0].plan

    def test_assignment_chain(self):
        compile_program(parse_program(
            "a(Z) :- b(X), Y = X + 1, Z = Y * 2."
        ))

    def test_anonymous_head_variable_allowed_nowhere(self):
        # _ in the head is not a named variable; rule is fine structurally.
        compiled = compile_program(parse_program("a(X) :- b(X, _)."))
        assert compiled.rules

    def test_plan_orders_filters_after_binders(self):
        compiled = compile_program(parse_program(
            "a(X) :- X > 2, b(X)."  # written filter-first; plan must reorder
        ))
        plan = compiled.rules[0].plan
        from repro.cylog.ast import Atom

        assert isinstance(plan[0], Atom)


class TestTaskSafety:
    OPEN = "open t(seg: text, out: text) key (seg).\n"

    def test_key_bound_by_body(self):
        compiled = compile_program(parse_program(
            self.OPEN + "r(S, T) :- seed(S), t(S, T)."
        ))
        assert len(compiled.rules[0].seed_plans) == 1

    def test_unbound_key_rejected(self):
        with pytest.raises(CyLogSafetyError, match="task-unsafe"):
            compile_program(parse_program(self.OPEN + "r(S, T) :- t(S, T)."))

    def test_key_from_other_open_predicate(self):
        source = (
            "open a(x: text, y: text) key (x).\n"
            "open b(y: text, z: text) key (y).\n"
            "r(X, Z) :- seed(X), a(X, Y), b(Y, Z)."
        )
        compiled = compile_program(parse_program(source))
        seed_plans = compiled.rules[0].seed_plans
        assert {plan.decl.name for plan in seed_plans} == {"a", "b"}

    def test_constant_key_is_safe(self):
        compiled = compile_program(parse_program(
            self.OPEN + 'r(T) :- t("fixed", T).'
        ))
        assert compiled.rules[0].seed_plans

    def test_anonymous_key_rejected(self):
        with pytest.raises(CyLogSafetyError, match="task-unsafe"):
            compile_program(parse_program(self.OPEN + "r(T) :- t(_, T)."))


class TestStratification:
    def test_plain_recursion_single_stratum(self):
        program = parse_program(
            "p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z), e(Z, Y)."
        )
        strata, count = stratify(program)
        assert strata["p"] == strata["e"] == 0
        assert count == 1

    def test_negation_increases_stratum(self):
        program = parse_program("a(X) :- b(X), not c(X).")
        strata, count = stratify(program)
        assert strata["a"] == strata["c"] + 1
        assert count == 2

    def test_aggregates_increase_stratum(self):
        program = parse_program("n(count<X>) :- b(X).")
        strata, _ = stratify(program)
        assert strata["n"] == strata["b"] + 1

    def test_recursive_negation_rejected(self):
        with pytest.raises(StratificationError):
            stratify(parse_program(
                "a(X) :- b(X), not a(X)."
            ))

    def test_mutual_recursive_negation_rejected(self):
        with pytest.raises(StratificationError):
            stratify(parse_program(
                "a(X) :- b(X), not c(X). c(X) :- b(X), not a(X)."
            ))

    def test_recursive_aggregate_rejected(self):
        with pytest.raises(StratificationError):
            compile_program(parse_program(
                "n(count<X>) :- n(X)."
            ))

    def test_negation_chain_strata(self):
        program = parse_program(
            "b(X) :- base(X), not a(X). c(X) :- base(X), not b(X)."
        )
        strata, count = stratify(program)
        assert strata["c"] > strata["b"] > strata["a"]
        assert count == 3

    def test_monotone_flag(self):
        assert compile_program(parse_program("a(X) :- b(X).")).is_monotone
        assert not compile_program(
            parse_program("a(X) :- b(X), not c(X).")
        ).is_monotone
        assert not compile_program(
            parse_program("a(count<X>) :- b(X).")
        ).is_monotone
