"""Multi-key index maintenance and engine statistics."""

from repro.cylog import EngineStats, SemiNaiveEngine, ShardConfig, parse_program
from repro.cylog.engine import Relation
from repro.cylog.indexes import MultiKeyHashIndex, TupleIndexSet
from repro.metrics import Collector


class TestMultiKeyHashIndex:
    def test_add_and_bucket(self):
        index = MultiKeyHashIndex()
        index.add(("a",), (1,))
        index.add(("a",), (2,))
        index.add(("b",), (3,))
        assert index.bucket(("a",)) == {(1,), (2,)}
        assert index.bucket(("missing",)) == frozenset()
        assert len(index) == 3
        assert index.key_count == 2

    def test_discard_removes_empty_buckets(self):
        index = MultiKeyHashIndex()
        index.add(("k",), 1)
        index.discard(("k",), 1)
        assert index.key_count == 0
        index.discard(("k",), 1)  # absent key is a no-op
        assert len(index) == 0

    def test_keys_iteration(self):
        index = MultiKeyHashIndex()
        index.add((1,), "x")
        index.add((2,), "y")
        assert sorted(index.keys()) == [(1,), (2,)]


class TestTupleIndexSet:
    def test_ensure_backfills_and_insert_maintains(self):
        indexes = TupleIndexSet()
        indexes.ensure((0,), [(1, "a"), (2, "b")])
        assert indexes.rows((0,), (1,)) == {(1, "a")}
        indexes.insert((1, "c"))
        assert indexes.rows((0,), (1,)) == {(1, "a"), (1, "c")}

    def test_ensure_is_idempotent(self):
        indexes = TupleIndexSet()
        indexes.ensure((0,), [(1,)])
        indexes.ensure((0,), [])  # must not wipe the backfilled rows
        assert indexes.rows((0,), (1,)) == {(1,)}
        assert indexes.index_count == 1
        assert indexes.specs() == ((0,),)

    def test_multiple_keys_maintained_together(self):
        indexes = TupleIndexSet()
        indexes.ensure((0,), [])
        indexes.ensure((1,), [])
        indexes.insert((1, "a"))
        assert indexes.rows((0,), (1,)) == {(1, "a")}
        assert indexes.rows((1,), ("a",)) == {(1, "a")}


class TestRelationIndexes:
    def test_registered_specs_maintained_from_empty(self):
        relation = Relation(2, index_specs=[(1,)])
        relation.add((1, "x"))
        relation.add((2, "x"))
        assert relation.lookup((1,), ("x",)) == {(1, "x"), (2, "x")}

    def test_unregistered_lookup_builds_lazily_then_maintains(self):
        relation = Relation(2)
        relation.add((1, "x"))
        assert relation.lookup((0,), (1,)) == {(1, "x")}
        relation.add((1, "y"))
        assert relation.lookup((0,), (1,)) == {(1, "x"), (1, "y")}

    def test_empty_positions_scan_everything(self):
        relation = Relation(1)
        relation.add((1,))
        relation.add((2,))
        assert relation.lookup((), ()) == {(1,), (2,)}


class TestEngineStats:
    SOURCE = """
        edge(1, 2). edge(2, 3). edge(3, 4).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- path(X, Z), edge(Z, Y).
    """

    def test_counters_populated_by_a_run(self):
        # interval pinned off: the chain closure is interval-eligible and
        # would otherwise bypass the join counters this test pins.
        engine = SemiNaiveEngine(
            parse_program(self.SOURCE), shard_config=ShardConfig(interval=False)
        )
        engine.run()
        stats = engine.stats
        assert stats.full_runs == 1
        assert stats.rules_fired > 0
        assert stats.tuples_derived == 6  # |path| for a 4-node chain
        assert stats.index_hits > 0
        assert stats.rounds >= 1
        assert stats.plans  # chosen plans are exposed for observability
        assert stats.interval_scans == 0  # path disabled

    def test_interval_counters_populated_by_a_run(self):
        engine = SemiNaiveEngine(parse_program(self.SOURCE))
        engine.run()
        stats = engine.stats
        assert stats.full_runs == 1
        assert stats.tuples_derived == 6  # same closure, served by ranges
        assert stats.interval_scans > 0
        assert stats.rounds == 0  # no fixpoint rounds needed

    def test_incremental_run_counted(self):
        engine = SemiNaiveEngine(parse_program(self.SOURCE))
        engine.run()
        engine.add_facts("edge", [(4, 5)])
        engine.run()
        assert engine.stats.incremental_runs == 1
        assert engine.stats.full_runs == 1

    def test_to_collector_exports_every_counter(self):
        engine = SemiNaiveEngine(parse_program(self.SOURCE))
        engine.run()
        collector = Collector()
        engine.stats.to_collector(collector)
        expected = {f"cylog_engine.{name}" for name in EngineStats().as_dict()}
        assert expected <= set(collector.counters)
        assert collector.counters["cylog_engine.full_runs"] == 1
