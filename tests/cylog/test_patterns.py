"""Crowdsourcing design patterns expressed in CyLog.

The paper's introduction cites the Find-Fix-Verify pattern of Soylent [1]
as the canonical crowd-powered dataflow; §2.2 describes eligibility driven
by qualification and human factors.  These tests show both patterns are
directly expressible in this CyLog implementation — evidence for the
"declarative, generic and collaboration-aware" claim.
"""

from repro.cylog import CyLogProcessor

FIND_FIX_VERIFY = """
    % Find: workers flag problematic spans in each paragraph.
    open find(para: text, span: text) key (para)
        asking "Find a problematic span in {para}".
    % Fix: other workers propose a replacement for each flagged span.
    open fix(para: text, span: text, patch: text) key (para, span)
        asking "Rewrite the span {span}".
    % Verify: a third crowd accepts or rejects each patch.
    open verify(para: text, patch: text, ok: bool) key (para, patch)
        asking "Is {patch} an improvement?" choices (true, false).

    paragraph("p1"). paragraph("p2").

    flagged(P, S) :- paragraph(P), find(P, S).
    patched(P, S, F) :- flagged(P, S), fix(P, S, F).
    accepted(P, F) :- patched(P, S, F), verify(P, F, true).
    rejected(P, F) :- patched(P, S, F), verify(P, F, false).
    n_accepted(count<F>) :- accepted(P, F).
"""


class TestFindFixVerify:
    def test_stages_demanded_in_order(self):
        processor = CyLogProcessor(FIND_FIX_VERIFY)
        # Stage 1: only 'find' tasks exist at first.
        kinds = {r.predicate for r in processor.pending_requests()}
        assert kinds == {"find"}

        # Stage 2: a find answer demands exactly one fix task.
        processor.supply_answer(
            processor.request_for("find", ("p1",)), {"span": "teh typo"}
        )
        kinds = {r.predicate for r in processor.pending_requests()}
        assert "fix" in kinds
        assert ("p1", "teh typo") == processor.request_for(
            "fix", ("p1", "teh typo")
        ).key_values

        # Stage 3: a fix answer demands verification of the patch.
        processor.supply_answer(
            processor.request_for("fix", ("p1", "teh typo")),
            {"patch": "the typo"},
        )
        verify = processor.request_for("verify", ("p1", "the typo"))
        assert verify.choices == (True, False)

        # Accepting the patch lands it in the accepted relation.
        processor.supply_answer(verify, {"ok": True})
        assert processor.facts("accepted") == {("p1", "the typo")}
        assert processor.facts("rejected") == frozenset()

    def test_rejected_patch_recorded_separately(self):
        processor = CyLogProcessor(FIND_FIX_VERIFY)
        processor.supply_fact("find", {"para": "p2"}, {"span": "bad"})
        processor.supply_fact(
            "fix", {"para": "p2", "span": "bad"}, {"patch": "worse"}
        )
        processor.supply_fact(
            "verify", {"para": "p2", "patch": "worse"}, {"ok": False}
        )
        assert processor.facts("rejected") == {("p2", "worse")}
        assert processor.facts("n_accepted") == frozenset()

    def test_full_run_counts_accepted(self):
        processor = CyLogProcessor(FIND_FIX_VERIFY)
        for para in ("p1", "p2"):
            processor.supply_fact("find", {"para": para}, {"span": f"s-{para}"})
            processor.supply_fact(
                "fix", {"para": para, "span": f"s-{para}"},
                {"patch": f"f-{para}"},
            )
            processor.supply_fact(
                "verify", {"para": para, "patch": f"f-{para}"}, {"ok": True}
            )
        assert processor.facts("n_accepted") == {(2,)}
        assert processor.is_quiescent()


QUALIFICATION = """
    % Only workers who pass a qualification test join the real task —
    % and the test itself is a crowdsourced task.
    open quiz(worker: text, answer: int) key (worker)
        asking "Qualification question for {worker}".
    open work(item: text, label: text) key (item)
        asking "Label {item}".

    candidate("w1"). candidate("w2"). candidate("w3").
    item("x").

    qualified(W) :- candidate(W), quiz(W, A), A == 42.
    eligible(W) :- qualified(W).
    labelled(I, L) :- item(I), work(I, L).
"""


class TestQualificationPattern:
    def test_eligibility_computed_from_quiz_answers(self):
        processor = CyLogProcessor(QUALIFICATION)
        assert {r.predicate for r in processor.pending_requests()} == {
            "quiz", "work",
        }
        processor.supply_fact("quiz", {"worker": "w1"}, {"answer": 42})
        processor.supply_fact("quiz", {"worker": "w2"}, {"answer": 7})
        processor.supply_fact("quiz", {"worker": "w3"}, {"answer": 42})
        assert processor.facts("eligible") == {("w1",), ("w3",)}

    def test_negation_over_open_predicate(self):
        source = QUALIFICATION + (
            "unqualified(W) :- candidate(W), quiz(W, A), not qualified(W).\n"
        )
        processor = CyLogProcessor(source)
        processor.supply_fact("quiz", {"worker": "w2"}, {"answer": 7})
        assert processor.facts("unqualified") == {("w2",)}


COLLABORATIVE_AGGREGATION = """
    % Majority voting over redundant crowd answers — aggregation + arithmetic.
    open vote(item: text, voter: text, yes: bool) key (item, voter).
    item("a"). item("b").
    voter("v1"). voter("v2"). voter("v3").
    ballot(I, V) :- item(I), voter(V).
    cast(I, V, B) :- ballot(I, V), vote(I, V, B).
    yes_votes(I, count<V>) :- cast(I, V, true).
    all_votes(I, count<V>) :- cast(I, V, B).
    approved(I) :- yes_votes(I, Y), all_votes(I, N), Y * 2 > N.
"""


class TestMajorityVoting:
    def test_redundant_tasks_demanded_per_voter(self):
        processor = CyLogProcessor(COLLABORATIVE_AGGREGATION)
        pending = processor.pending_requests()
        assert len(pending) == 6  # 2 items × 3 voters

    def test_majority_decision(self):
        processor = CyLogProcessor(COLLABORATIVE_AGGREGATION)
        votes = {
            ("a", "v1"): True, ("a", "v2"): True, ("a", "v3"): False,
            ("b", "v1"): False, ("b", "v2"): False, ("b", "v3"): True,
        }
        for (item, voter), yes in votes.items():
            processor.supply_fact(
                "vote", {"item": item, "voter": voter}, {"yes": yes}
            )
        assert processor.facts("approved") == {("a",)}
        assert processor.is_quiescent()
