"""Shared hypothesis generators for the differential-testing oracles.

``stratified_program`` builds random stratified programs (negation,
comparisons, optional aggregate — safe by construction) and ``update_ops``
random add/retract streams over the EDB predicates.  Both the
``engine-diff`` oracle (incremental vs from-scratch) and the ``shard-diff``
oracle (sharded/threaded vs single-store) draw from the same distribution,
so the two CI gates exercise the same program space.
"""

from __future__ import annotations

import hypothesis.strategies as st

EDB = ("e1", "e2")
_VARS = ("X", "Y", "Z")

constants = st.integers(min_value=0, max_value=4)


def _atom(pred: str, left: str, right: str) -> str:
    return f"{pred}({left}, {right})"


@st.composite
def stratified_program(draw) -> str:
    """A random stratified program with negation, comparisons and an
    optional aggregate, safe by construction.

    Stratum discipline: ``d1`` rules read only EDB (negation of EDB
    allowed); ``d2`` rules read EDB/``d1``/``d2`` positively and may negate
    ``d1``; the aggregate ``d3`` reads ``d2``.
    """
    lines: list[str] = []
    for pred in EDB:
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            lines.append(f"{pred}({draw(constants)}, {draw(constants)}).")

    def body_atoms(pool: tuple[str, ...], count: int) -> tuple[list[str], list[str]]:
        atoms, chain = [], ["X"]
        for position in range(count):
            pred = draw(st.sampled_from(pool))
            left = chain[-1] if position else "X"
            right = draw(st.sampled_from(_VARS)) if position else "Y"
            atoms.append(_atom(pred, left, right))
            chain.extend([left, right])
        return atoms, chain

    # Stratum 1: d1 from EDB only.
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        atoms, chain = body_atoms(EDB, draw(st.integers(min_value=1, max_value=2)))
        if draw(st.booleans()):
            atoms.append(f"not {_atom(draw(st.sampled_from(EDB)), chain[0], chain[-1])}")
        if draw(st.booleans()):
            atoms.append(f"{chain[0]} <= {chain[-1]}")
        lines.append(f"d1({chain[0]}, {chain[-1]}) :- " + ", ".join(atoms) + ".")

    # Stratum 2: d2 from EDB, d1 and (recursively) d2; may negate d1.
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        pool = EDB + ("d1", "d2")
        atoms, chain = body_atoms(pool, draw(st.integers(min_value=1, max_value=3)))
        if draw(st.booleans()):
            atoms.append(f"not {_atom('d1', chain[0], chain[-1])}")
        lines.append(f"d2({chain[0]}, {chain[-1]}) :- " + ", ".join(atoms) + ".")

    # Stratum 3: one aggregate over d2.
    if draw(st.booleans()):
        func = draw(st.sampled_from(("count", "sum", "min", "max")))
        lines.append(f"d3(X, {func}<Y>) :- d2(X, Y).")

    # An anonymous-variable projection: exercises the wildcard support
    # patterns the sharded support index partitions.
    if draw(st.booleans()):
        lines.append("d4(X) :- e1(X, _).")

    # A join on the *second* positions: the probed atom's index key misses
    # the shard key prefix, so sharded engines exercise the exchange
    # repartition (or the chained-lookup fallback) instead of a routed
    # prefix probe.
    if draw(st.booleans()):
        lines.append("d5(X, Y) :- e1(X, Z), e2(Y, Z).")
    return "\n".join(lines)


#: Row values for update streams: small ints plus floats Python's ``==``
#: conflates with them — shard routing and index buckets must agree with
#: the single store on exactly this class.  (Bools conflate too but are
#: rejected by aggregate rules engine-wide; the sharding unit tests cover
#: their routing directly.)
row_values = st.one_of(constants, st.sampled_from((0.0, 1.0, 2.5)))

#: One update operation: (assert?, predicate, row).
update_ops = st.lists(
    st.tuples(st.booleans(), st.sampled_from(EDB), st.tuples(row_values, row_values)),
    min_size=1,
    max_size=10,
)


# ---------------------------------------------------------------------------
# Tree-shaped programs for the interval access path
# ---------------------------------------------------------------------------

#: The canonical interval-eligible program: a linear transitive closure
#: over ``edge``, plus downstream consumers in higher strata (a plain
#: join, a negation and an aggregate) so the oracles verify that
#: interval-produced deltas propagate exactly like fixpoint-produced
#: ones.  ``unreach`` keeps a non-interval recursive head in the same
#: program so mixed strata are exercised.
TREE_PROGRAM = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
pair(X, Z) :- tc(X, Y), tc(Y, Z).
leafless(X) :- tc(X, Y), not edge(X, Y).
fanout(X, count<Y>) :- tc(X, Y).
unreach(X, Y) :- edge(X, Y), not tc(Y, X).
"""

#: Node ids for forest churn.  Small enough that random attach streams
#: routinely create second parents, self-loops and cycles — every op
#: stream exercises both the interval path and its sound-disable fallback.
_NODES = st.integers(min_value=0, max_value=11)


@st.composite
def forest_ops(draw) -> list[tuple[str, int, int]]:
    """A random churn stream over ``edge``: attaches, detaches and
    subtree moves (detach + re-attach under a new parent in one batch).

    Ops are structural intents, not guaranteed-valid tree mutations —
    duplicate attaches, detaches of absent edges and forest-breaking
    edges are all left in deliberately.
    """
    ops: list[tuple[str, int, int]] = []
    edges: list[tuple[int, int]] = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(("attach", "attach", "attach", "detach", "move")))
        if kind == "attach" or not edges:
            parent, child = draw(_NODES), draw(_NODES)
            ops.append(("attach", parent, child))
            edges.append((parent, child))
        elif kind == "detach":
            parent, child = draw(st.sampled_from(edges))
            ops.append(("detach", parent, child))
            edges.remove((parent, child))
        else:  # move: re-root an existing child under a fresh parent
            parent, child = draw(st.sampled_from(edges))
            new_parent = draw(_NODES)
            ops.append(("detach", parent, child))
            ops.append(("attach", new_parent, child))
            edges.remove((parent, child))
            edges.append((new_parent, child))
    return ops


def apply_forest_op(engine, op: tuple[str, int, int]) -> None:
    """Apply one ``forest_ops`` element to an engine-like object exposing
    ``add_facts`` / ``retract_facts``."""
    kind, parent, child = op
    if kind == "attach":
        engine.add_facts("edge", [(parent, child)])
    else:
        engine.retract_facts("edge", [(parent, child)])
