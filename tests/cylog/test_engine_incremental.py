"""Cross-run incremental evaluation: retraction semantics and deltas.

These tests pin the counting + DRed deletion machinery of
:class:`SemiNaiveEngine` — support counts > 1, over-delete / re-derive
inside recursion, negation gain/loss triggers, aggregate recompute-and-diff
— and the ``EvaluationResult.added/removed`` change reports every run
surfaces.  Everything here runs against the *retained* store: ``runs`` must
stay at 1 throughout (no hidden full recomputations).
"""

from __future__ import annotations

import pytest

from repro.cylog.engine import SemiNaiveEngine, naive_evaluate
from repro.cylog.errors import CyLogTypeError
from repro.cylog.parser import parse_program
from repro.cylog.sharding import ShardConfig


def _engine(source: str, interval: bool = True) -> SemiNaiveEngine:
    """``interval=False`` pins the fixpoint path for tests that assert the
    counting/DRed internals a closure served from the interval index would
    (correctly) bypass."""
    engine = SemiNaiveEngine(
        parse_program(source), shard_config=ShardConfig(interval=interval)
    )
    engine.run()
    return engine


class TestSupportCounting:
    def test_multiple_rules_keep_tuple_alive(self):
        """A fact derived by two rules survives losing one of them
        (support count 2 -> 1) and dies with the second (1 -> 0)."""
        engine = _engine("""
            a(1). b(1).
            d(X) :- a(X).
            d(X) :- b(X).
        """)
        assert engine.facts("d") == {(1,)}
        engine.retract_facts("a", [(1,)])
        result = engine.run()
        assert result.facts("d") == {(1,)}
        assert result.removed("d") == frozenset()  # still supported via b
        engine.retract_facts("b", [(1,)])
        result = engine.run()
        assert result.facts("d") == frozenset()
        assert result.removed("d") == {(1,)}
        assert engine.runs == 1

    def test_multiple_bindings_keep_tuple_alive(self):
        """Two bindings of the same rule are two supports."""
        engine = _engine("""
            edge("a", "x"). edge("b", "x").
            reached(Y) :- edge(_, Y).
        """)
        engine.retract_facts("edge", [("a", "x")])
        assert engine.run().facts("reached") == {("x",)}
        engine.retract_facts("edge", [("b", "x")])
        assert engine.run().facts("reached") == frozenset()
        assert engine.runs == 1

    def test_wildcard_support_rechecked_not_dropped(self):
        """An anonymous-variable dependency survives as long as *some* row
        still matches the hole."""
        engine = _engine("""
            likes("ann", "tea"). likes("ann", "gin"). likes("bob", "tea").
            drinker(X) :- likes(X, _).
        """)
        engine.retract_facts("likes", [("ann", "tea")])
        assert engine.run().facts("drinker") == {("ann",), ("bob",)}
        engine.retract_facts("likes", [("ann", "gin")])
        result = engine.run()
        assert result.facts("drinker") == {("bob",)}
        assert result.removed("drinker") == {("ann",)}

    def test_wildcard_recheck_keeps_bool_int_apart(self):
        """The wildcard re-check goes through the hash index, where
        ``True`` and ``1`` collide — a bool row must not keep an int
        binding's support alive (mirrors ``_bind_atom`` strictness)."""
        engine = _engine("j(X) :- k(X), m(X, _).")
        engine.add_facts("k", [(1,)])
        engine.add_facts("m", [(True, "x"), (1, "y")])
        assert engine.run().facts("j") == {(1,)}
        engine.retract_facts("m", [(1, "y")])
        assert engine.run().facts("j") == frozenset()

    def test_support_counts_tracked_after_incremental_addition(self):
        """A second derivation arriving *after* the first run must still
        count: retracting one of them later keeps the tuple."""
        engine = _engine("""
            a(1).
            d(X) :- a(X).
            d(X) :- b(X).
        """)
        engine.add_facts("b", [(1,)])
        assert engine.run().facts("d") == {(1,)}
        engine.retract_facts("a", [(1,)])
        assert engine.run().facts("d") == {(1,)}
        engine.retract_facts("b", [(1,)])
        assert engine.run().facts("d") == frozenset()
        assert engine.runs == 1


class TestRecursiveRetraction:
    CLOSURE = """
        edge(1, 2). edge(2, 3). edge(3, 4). edge(1, 3).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- path(X, Z), edge(Z, Y).
    """

    def test_alternate_path_keeps_reachability(self):
        """Deleting edge(2,3) kills only the 2->* paths: path(1,3) and
        path(1,4) stay alive through their grounded edge(1,3) support (the
        counting fast path, no DRed churn needed)."""
        engine = _engine(self.CLOSURE)
        assert (1, 4) in engine.facts("path")
        engine.retract_facts("edge", [(2, 3)])
        result = engine.run()
        oracle = naive_evaluate(parse_program("""
            edge(1, 2). edge(3, 4). edge(1, 3).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).
        """))
        assert result.facts("path") == oracle.facts("path")
        assert (1, 4) in result.facts("path")  # still held by 1->3->4
        assert result.removed("path") == {(2, 3), (2, 4)}
        assert engine.stats.tuples_rederived == 0  # counting sufficed
        assert engine.runs == 1

    def test_overdelete_then_rederive_through_recursion(self):
        """Deleting the only *grounded* support of path(1,3) forces a DRed
        over-delete; the tuple is re-derived through the recursive
        path(1,2) + edge(2,3) derivation and the net report shows only the
        base edge leaving.  Interval is pinned off: the retraction leaves a
        forest, so the index would otherwise serve the exact delta with no
        over-delete at all."""
        engine = _engine(
            """
            edge(1, 2). edge(2, 3). edge(1, 3).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).
            """,
            interval=False,
        )
        engine.retract_facts("edge", [(1, 3)])
        result = engine.run()
        assert result.facts("path") == {(1, 2), (2, 3), (1, 3)}
        assert result.removed("path") == frozenset()  # re-derived in place
        assert engine.stats.overdeletions > 0
        assert engine.stats.tuples_rederived > 0
        assert engine.runs == 1

    def test_suffix_cascade_without_alternate_path(self):
        engine = _engine(self.CLOSURE)
        engine.retract_facts("edge", [(3, 4)])
        result = engine.run()
        assert result.facts("path") == {(1, 2), (2, 3), (1, 3)}
        assert result.removed("path") == {(3, 4), (2, 4), (1, 4)}

    def test_cyclic_garbage_collected(self):
        """A derivation cycle kept alive only by a deleted external support
        must fully collapse (the counting-only trap DRed exists for)."""
        engine = _engine("""
            edge("in", "a"). edge("a", "b"). edge("b", "a").
            reach(Y) :- src(X), edge(X, Y).
            reach(Y) :- reach(X), edge(X, Y).
            src("in").
        """)
        assert engine.facts("reach") == {("a",), ("b",)}
        engine.retract_facts("edge", [("in", "a")])
        result = engine.run()
        # a and b support each other through the 2-cycle, but nothing
        # grounds them any more.
        assert result.facts("reach") == frozenset()
        assert result.removed("reach") == {("a",), ("b",)}


class TestNegationRetraction:
    def test_retraction_under_negation_adds_derivations(self):
        """Negation *loss* trigger: retracting a blocker derives new facts
        one stratum up."""
        engine = _engine("""
            person("a"). person("b"). happy("a").
            sad(X) :- person(X), not happy(X).
        """)
        assert engine.facts("sad") == {("b",)}
        engine.retract_facts("happy", [("a",)])
        result = engine.run()
        assert result.facts("sad") == {("a",), ("b",)}
        assert result.added("sad") == {("a",)}
        assert engine.runs == 1

    def test_addition_under_negation_retracts_derivations(self):
        engine = _engine("""
            person("a"). person("b").
            sad(X) :- person(X), not happy(X).
        """)
        assert engine.facts("sad") == {("a",), ("b",)}
        engine.add_facts("happy", [("a",)])
        result = engine.run()
        assert result.facts("sad") == {("b",)}
        assert result.removed("sad") == {("a",)}

    def test_wildcard_negation_blocked_by_surviving_row(self):
        """Retraction under ``not q(X, _)``: the negation only opens once
        *every* matching row is gone."""
        engine = _engine("""
            person("a"). person("b").
            likes("a", "tea"). likes("a", "gin").
            loner(X) :- person(X), not likes(X, _).
        """)
        assert engine.facts("loner") == {("b",)}
        engine.retract_facts("likes", [("a", "tea")])
        assert engine.run().facts("loner") == {("b",)}  # gin still blocks
        engine.retract_facts("likes", [("a", "gin")])
        result = engine.run()
        assert result.facts("loner") == {("a",), ("b",)}
        assert result.added("loner") == {("a",)}

    def test_rederivation_crosses_stratum_boundary(self):
        """Retraction in stratum 0 retracts a derived blocker, which lets a
        higher stratum re-derive through its negation — and the reverse on
        re-assertion."""
        engine = _engine("""
            flag("w", 1).
            banned(W) :- flag(W, F), F >= 1.
            member("w"). member("v").
            allowed(W) :- member(W), not banned(W).
            n_allowed(count<W>) :- allowed(W).
        """)
        assert engine.facts("allowed") == {("v",)}
        assert engine.facts("n_allowed") == {(1,)}
        engine.retract_facts("flag", [("w", 1)])
        result = engine.run()
        assert result.facts("allowed") == {("v",), ("w",)}
        assert result.removed("banned") == {("w",)}
        assert result.added("allowed") == {("w",)}
        assert result.facts("n_allowed") == {(2,)}
        engine.add_facts("flag", [("w", 5)])
        result = engine.run()
        assert result.facts("allowed") == {("v",)}
        assert result.facts("n_allowed") == {(1,)}
        assert engine.runs == 1


class TestAggregateRetraction:
    def test_counts_follow_retraction(self):
        engine = _engine("""
            speaks("a", "en"). speaks("b", "en"). speaks("c", "fr").
            per_lang(L, count<W>) :- speaks(W, L).
        """)
        assert engine.facts("per_lang") == {("en", 2), ("fr", 1)}
        engine.retract_facts("speaks", [("a", "en")])
        result = engine.run()
        assert result.facts("per_lang") == {("en", 1), ("fr", 1)}
        assert result.removed("per_lang") == {("en", 2)}
        assert result.added("per_lang") == {("en", 1)}
        assert engine.runs == 1

    def test_group_disappears_when_empty(self):
        engine = _engine("""
            speaks("c", "fr"). speaks("d", "en").
            per_lang(L, count<W>) :- speaks(W, L).
        """)
        engine.retract_facts("speaks", [("c", "fr")])
        result = engine.run()
        assert result.facts("per_lang") == {("en", 1)}
        assert result.removed("per_lang") == {("fr", 1)}

    def test_aggregate_feeding_rule_across_strata(self):
        """The aggregate diff must propagate into rules consuming it."""
        engine = _engine("""
            member("g1", "a"). member("g1", "b"). member("g2", "c").
            size(G, count<M>) :- member(G, M).
            big(G) :- size(G, N), N >= 2.
        """)
        assert engine.facts("big") == {("g1",)}
        engine.retract_facts("member", [("g1", "b")])
        result = engine.run()
        assert result.facts("big") == frozenset()
        assert result.removed("big") == {("g1",)}
        engine.add_facts("member", [("g2", "d"), ("g2", "e")])
        result = engine.run()
        assert result.facts("big") == {("g2",)}
        assert engine.runs == 1

    def test_multi_atom_aggregate_localised_exact_diff(self):
        """Join bodies are localised through the support index: retracting
        a fact touching only group "t" recomputes only that group and the
        diff is exact."""
        engine = _engine("""
            score("t", "a", 10). score("t", "b", 20). score("u", "a", 5).
            active("a"). active("b").
            total(G, sum<S>) :- score(G, W, S), active(W).
        """)
        assert engine.facts("total") == {("t", 30), ("u", 5)}
        engine.retract_facts("active", [("b",)])
        result = engine.run()
        assert result.facts("total") == {("t", 10), ("u", 5)}
        assert result.removed("total") == {("t", 30)}
        assert result.added("total") == {("t", 10)}

    def test_multi_atom_aggregate_localises_additions_and_removals(self):
        """Every delta side of every body atom lands on the same fixpoint
        as a from-scratch evaluation, group by group."""
        engine = _engine(
            "\n".join(
                [
                    # a fat "t" group localisation must avoid re-joining
                    *(f'score("t", "a", {i}).' for i in range(50)),
                    'score("u", "a", 5).',
                    'active("a").',
                    "total(G, sum<S>) :- score(G, W, S), active(W).",
                ]
            )
        )
        joined_baseline = engine.stats.tuples_joined
        engine.add_facts("score", [("u", "a", 7)])
        result = engine.run()
        assert result.facts("total") == {("t", 1225), ("u", 12)}
        assert result.added("total") == {("u", 12)}
        assert result.removed("total") == {("u", 5)}
        # Localisation: the untouched fat "t" group's join was not re-run.
        assert engine.stats.tuples_joined - joined_baseline < 20
        engine.add_facts("active", [("b",)])
        engine.add_facts("score", [("t", "b", 1000)])
        result = engine.run()
        assert result.facts("total") == {("t", 2225), ("u", 12)}
        engine.retract_facts("score", [("u", "a", 5)])
        result = engine.run()
        assert result.facts("total") == {("t", 2225), ("u", 7)}
        assert result.removed("total") == {("u", 12)}
        assert engine.runs == 1

    def test_multi_atom_aggregate_group_vanishes(self):
        """Removing the last contributing row deletes the group's output
        tuple entirely (no empty-group ghost)."""
        engine = _engine("""
            score("t", "a", 10). score("u", "a", 5).
            active("a").
            total(G, count<S>) :- score(G, W, S), active(W).
        """)
        engine.retract_facts("score", [("u", "a", 5)])
        result = engine.run()
        assert result.facts("total") == {("t", 1)}
        assert result.removed("total") == {("u", 1)}
        assert result.added("total") == frozenset()


class TestDeltaReports:
    def test_noop_run_reports_nothing(self):
        engine = _engine("p(1). q(X) :- p(X).")
        result = engine.run()
        assert not result.has_changes()

    def test_net_zero_churn_reports_nothing(self):
        """Retract + re-assert between runs cancels in the ledger."""
        engine = _engine("p(1). q(X) :- p(X).")
        engine.retract_facts("p", [(1,)])
        engine.add_facts("p", [(1,)])
        result = engine.run()
        assert not result.has_changes()
        assert result.facts("q") == {(1,)}

    def test_full_run_reports_diff_against_previous_fixpoint(self):
        engine = _engine("p(1). q(X) :- p(X).")
        engine.add_facts("p", [(2,)])
        engine.retract_facts("p", [(1,)])
        result = engine.run(full=True)
        assert result.added("q") == {(2,)}
        assert result.removed("q") == {(1,)}

    def test_retracting_idb_rejected(self):
        engine = _engine("p(1). q(X) :- p(X).")
        with pytest.raises(CyLogTypeError, match="derived"):
            engine.retract_facts("q", [(1,)])

    def test_retracting_absent_rows_is_noop(self):
        engine = _engine("p(1). q(X) :- p(X).")
        assert engine.retract_facts("p", [(9,)]) == 0
        assert not engine.run().has_changes()

    def test_program_text_facts_are_retractable(self):
        engine = _engine("p(1). p(2). q(X) :- p(X).")
        assert engine.retract_facts("p", [(1,)]) == 1
        assert engine.run().facts("q") == {(2,)}

    def test_arity_pinned_across_full_retraction(self):
        """Retracting every fact of a predicate must not let a later
        re-assertion change its arity (regression: the emptied base set
        used to disable the arity guard)."""
        engine = _engine("q(X) :- p(X, _).")
        engine.add_facts("p", [(1, 2)])
        engine.run()
        engine.retract_facts("p", [(1, 2)])
        engine.run()
        with pytest.raises(CyLogTypeError, match="arity"):
            engine.add_facts("p", [(1, 2, 3)])
