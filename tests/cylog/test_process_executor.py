"""Process executor: replica sync protocol, lockstep equivalence, lifecycle.

The shard-diff hypothesis oracle (test_sharding.py) covers randomized
programs; these tests pin the deterministic corners — the reset/sync
replica protocol across full and incremental runs, retraction cascades
reaching the replicas, error propagation out of a worker, and executor
lifecycle (lazy spawn, close, re-dispatch after close).
"""

from __future__ import annotations

import pytest

from repro.config import RuntimeConfig
from repro.cylog import (
    CyLogProcessor,
    SemiNaiveEngine,
    ShardConfig,
    compile_program,
    parse_program,
)
from repro.cylog.procpool import ProcessExecutor, ProcessPoolBrokenError

SOURCE = """
reach(S, Y) :- source(S), link(S, Y).
reach(S, Y) :- link(X, Y), reach(S, X).
joined(L, R) :- left(L, K), right(R, K).
quiet(X, Y) :- link(X, Y), not reach(X, Y).
fanout(X, count<Y>) :- link(X, Y).
"""


def _process_config(workers: int = 2) -> ShardConfig:
    return ShardConfig(
        shards=4, executor="process", max_workers=workers, min_parallel_rows=0
    )


def _load(engine: SemiNaiveEngine) -> None:
    engine.add_facts("link", [(i, i + 1) for i in range(40)])
    engine.add_facts("source", [(0,), (10,)])
    engine.add_facts("left", [(i, i % 6) for i in range(30)])
    engine.add_facts("right", [(i + 500, i % 6) for i in range(30)])


class TestEngineLockstep:
    def test_full_and_incremental_runs_match_serial(self):
        program = parse_program(SOURCE)
        serial = SemiNaiveEngine(program)
        process = SemiNaiveEngine(program, shard_config=_process_config())
        try:
            _load(serial), _load(process)
            assert process.run().relations == serial.run().relations
            # Retraction: the deletion cascade happens in the engine; the
            # replicas must see its outcome through the sync stream.
            for engine in (serial, process):
                engine.retract_facts("link", [(3, 4), (20, 21)])
                engine.retract_facts("right", [(505, 5)])
                engine.add_facts("link", [(3, 100), (100, 4)])
            expected = serial.run()
            result = process.run()
            assert result.relations == expected.relations
            assert result.added_rows == expected.added_rows
            assert result.removed_rows == expected.removed_rows
            assert process.store.fingerprint() == serial.store.fingerprint()
            assert process.runs == 1  # updates stayed incremental
            assert (
                process.stats.derivation_counters()
                == serial.stats.derivation_counters()
            )
        finally:
            serial.close()
            process.close()

    def test_second_full_run_resets_replicas(self):
        program = parse_program(SOURCE)
        serial = SemiNaiveEngine(program)
        process = SemiNaiveEngine(program, shard_config=_process_config())
        try:
            _load(serial), _load(process)
            serial.run(), process.run()
            for engine in (serial, process):
                engine.add_facts("link", [(200, 201)])
                engine.run(full=True)  # new store + replan: replicas reset
                engine.retract_facts("link", [(200, 201)])
            assert process.run().relations == serial.run().relations
            assert process.store.fingerprint() == serial.store.fingerprint()
        finally:
            serial.close()
            process.close()

    def test_killed_workers_demote_engine_to_serial(self):
        """Satellite gate: kill every child mid-stream — the next run must
        not hang or corrupt state.  The engine catches the broken pool,
        demotes itself to inline serial evaluation (its own store was
        authoritative all along) and keeps answering correctly."""
        program = parse_program(SOURCE)
        serial = SemiNaiveEngine(program)
        process = SemiNaiveEngine(program, shard_config=_process_config())
        try:
            _load(serial), _load(process)
            assert process.run().relations == serial.run().relations
            for proc in process._executor._procs:
                proc.terminate()
                proc.join(timeout=5)
            for engine in (serial, process):
                engine.retract_facts("link", [(3, 4)])
                engine.add_facts("link", [(3, 100), (100, 4)])
            expected = serial.run()
            result = process.run()  # survives the dead pool
            assert result.relations == expected.relations
            assert result.added_rows == expected.added_rows
            assert result.removed_rows == expected.removed_rows
            assert process.store.fingerprint() == serial.store.fingerprint()
            # The engine is durably usable after the fallback.
            for engine in (serial, process):
                engine.add_facts("link", [(200, 201), (201, 202)])
            assert process.run().relations == serial.run().relations
        finally:
            serial.close()
            process.close()

    def test_processor_plumbs_process_config(self):
        source = """
        open translate(seg: text, out: text) key (seg) asking "t {seg}".
        segment("a"). segment("b").
        translated(S, T) :- segment(S), translate(S, T).
        """
        processor = CyLogProcessor(
            source,
            config=RuntimeConfig(shards=2, executor="process", max_workers=2),
        )
        try:
            assert processor.engine.shard_config.executor == "process"
            assert processor.engine.shard_config.shards == 2
            requests = processor.pending_requests()
            assert sorted(r.key_values for r in requests) == [("a",), ("b",)]
            processor.supply_answer(
                processor.request_for("translate", ("a",)), {"out": "A"}
            )
            assert processor.facts("translated") == frozenset({("a", "A")})
        finally:
            processor.close()

    def test_processor_shard_config_kwarg_removed(self):
        with pytest.raises(TypeError):
            CyLogProcessor("p(1).", shard_config=_process_config())


class TestProtocol:
    def test_dispatch_before_reset_raises(self):
        executor = ProcessExecutor(max_workers=1)
        try:
            with pytest.raises(RuntimeError, match="before reset"):
                executor.run_rule_tasks([(0, None, None)])
        finally:
            executor.close()

    def test_worker_error_propagates(self):
        compiled = compile_program(parse_program("d(X) :- e(X)."))
        executor = ProcessExecutor(max_workers=1)
        try:
            executor.reset(compiled, {"e": ((1,),)})
            with pytest.raises(RuntimeError, match="process worker failed"):
                executor.run_rule_tasks([(99, None, None)])  # no such rule
        finally:
            executor.close()

    def test_error_path_drains_other_workers(self):
        """One failing task must not desync the pipe protocol: the other
        workers' replies are drained, and the next dispatch returns fresh
        (not stale) results."""
        compiled = compile_program(parse_program("d(X) :- e(X).\nf(X) :- g(X)."))
        executor = ProcessExecutor(max_workers=2)
        try:
            executor.reset(compiled, {"e": ((1,),), "g": ((9,),)})
            with pytest.raises(RuntimeError, match="process worker failed"):
                executor.run_rule_tasks([(99, None, None), (1, None, None)])
            first, second = executor.run_rule_tasks(
                [(0, None, None), (0, None, None)]
            )
            assert {row for row, _ in first[0]} == {(1,)}
            assert {row for row, _ in second[0]} == {(1,)}
        finally:
            executor.close()

    def test_results_come_back_in_submission_order(self):
        compiled = compile_program(parse_program("d(X) :- e(X).\nf(X) :- g(X)."))
        executor = ProcessExecutor(max_workers=3)
        try:
            executor.reset(compiled, {"e": ((1,), (2,)), "g": ((9,),)})
            results = executor.run_rule_tasks(
                [(0, None, None), (1, None, None), (0, None, None)]
            )
            assert len(results) == 3
            first, second, third = results
            assert {row for row, _ in first[0]} == {(1,), (2,)}
            assert {row for row, _ in second[0]} == {(9,)}
            assert {row for row, _ in third[0]} == {(1,), (2,)}
        finally:
            executor.close()

    def test_sync_reaches_replicas_spawned_later(self):
        """Syncs queued before the pool spawns are replayed on first
        dispatch — the lazy-spawn path."""
        compiled = compile_program(parse_program("d(X) :- e(X)."))
        executor = ProcessExecutor(max_workers=2)
        try:
            executor.reset(compiled, {"e": ((1,),)})
            executor.sync({"e": ((2,), (3,))}, {})
            executor.sync({}, {"e": ((1,),)})
            (result,) = executor.run_rule_tasks([(0, None, None)])
            assert {row for row, _ in result[0]} == {(2,), (3,)}
        finally:
            executor.close()

    def test_killed_worker_raises_broken_pool(self):
        """A worker death mid-dispatch surfaces as ProcessPoolBrokenError
        (not a hang, not a pickle error) and closes the pool."""
        compiled = compile_program(parse_program("d(X) :- e(X)."))
        executor = ProcessExecutor(max_workers=2)
        try:
            executor.reset(compiled, {"e": ((1,),)})
            executor.run_rule_tasks([(0, None, None)])  # spawn the pool
            for proc in executor._procs:
                proc.terminate()
                proc.join(timeout=5)
            with pytest.raises(ProcessPoolBrokenError, match="worker died"):
                executor.run_rule_tasks([(0, None, None)])
            with pytest.raises(RuntimeError, match="closed"):
                executor.run_rule_tasks([(0, None, None)])
        finally:
            executor.close()

    def test_close_is_idempotent_and_terminal_until_reset(self):
        """Dispatching after close() must raise — respawning from the old
        baseline would silently drop every already-streamed sync — while a
        fresh reset() (what an engine full run issues) re-opens the pool."""
        executor = ProcessExecutor(max_workers=1)
        compiled = compile_program(parse_program("d(X) :- e(X)."))
        executor.reset(compiled, {"e": ((1,),)})
        executor.sync({"e": ((2,),)}, {})
        executor.run_rule_tasks([(0, None, None)])
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.run_rule_tasks([(0, None, None)])
        try:
            executor.reset(compiled, {"e": ((1,), (2,), (3,))})
            (result,) = executor.run_rule_tasks([(0, None, None)])
            assert {row for row, _ in result[0]} == {(1,), (2,), (3,)}
        finally:
            executor.close()
