"""Lexer behaviour: tokens, positions, errors."""

import pytest

from repro.cylog.errors import CyLogParseError
from repro.cylog.lexer import tokenize
from repro.cylog.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasics:
    def test_empty_input_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_identifier_vs_variable(self):
        assert kinds("worker Worker _x") == [
            TokenType.IDENT, TokenType.VARIABLE, TokenType.VARIABLE,
        ]

    def test_keywords_recognised(self):
        assert kinds("open key asking choices not true false") == [
            TokenType.KEYWORD
        ] * 7

    def test_numbers(self):
        assert values("42 3.14") == [42, 3.14]
        assert isinstance(values("42")[0], int)
        assert isinstance(values("3.14")[0], float)

    def test_negative_number_literal(self):
        assert values("p(-3)")[2] == -3

    def test_minus_after_operand_is_subtraction(self):
        out = values("X - 3")
        assert out == ["X", "-", 3]

    def test_trailing_period_not_part_of_number(self):
        out = values("p(42).")
        assert out == ["p", "(", 42, ")", "."]

    def test_multi_char_operators(self):
        assert values(":- <= >= == !=") == [":-", "<=", ">=", "==", "!="]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  bcd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestStrings:
    def test_simple_string(self):
        assert values('"hello world"') == ["hello world"]

    def test_escapes(self):
        assert values(r'"a\"b\\c\nd\te"') == ['a"b\\c\nd\te']

    def test_unterminated_string(self):
        with pytest.raises(CyLogParseError, match="unterminated"):
            tokenize('"oops')

    def test_newline_in_string_rejected(self):
        with pytest.raises(CyLogParseError, match="newline"):
            tokenize('"a\nb"')

    def test_unknown_escape_rejected(self):
        with pytest.raises(CyLogParseError, match="unknown escape"):
            tokenize(r'"\q"')


class TestComments:
    def test_percent_comment(self):
        assert kinds("% a comment\nfact(1).")[0] is TokenType.IDENT

    def test_double_slash_comment(self):
        assert values("// note\np(1).")[0] == "p"

    def test_comment_to_end_of_line_only(self):
        out = values("p(1). % trailing\nq(2).")
        assert "q" in out


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(CyLogParseError, match="unexpected character"):
            tokenize("p(1) @ q(2)")

    def test_error_carries_position(self):
        try:
            tokenize("abc\n   @")
        except CyLogParseError as exc:
            assert exc.line == 2 and exc.column == 4
        else:  # pragma: no cover
            raise AssertionError("expected a parse error")
