"""Property-based CyLog tests: round-trips and engine equivalence."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cylog.engine import SemiNaiveEngine, naive_evaluate
from repro.cylog.parser import parse_program
from repro.cylog.pretty import program_to_source

# ---------------------------------------------------------------------------
# Random monotone programs over a fixed predicate vocabulary
# ---------------------------------------------------------------------------

_EDB = ("e1", "e2")
_IDB = ("d1", "d2", "d3")
_VARS = ("X", "Y", "Z")

constants = st.integers(min_value=0, max_value=4)


@st.composite
def random_program(draw) -> str:
    """A small random positive Datalog program plus facts."""
    lines: list[str] = []
    for pred in _EDB:
        n_facts = draw(st.integers(min_value=0, max_value=6))
        for _ in range(n_facts):
            a = draw(constants)
            b = draw(constants)
            lines.append(f"{pred}({a}, {b}).")
    n_rules = draw(st.integers(min_value=1, max_value=5))
    for _ in range(n_rules):
        head = draw(st.sampled_from(_IDB))
        n_body = draw(st.integers(min_value=1, max_value=3))
        body_atoms = []
        used_vars: list[str] = []
        for position in range(n_body):
            pred = draw(st.sampled_from(_EDB + _IDB))
            # Chain variables so most rules join meaningfully.
            if position == 0:
                left, right = "X", "Y"
            else:
                left = used_vars[-1]
                right = draw(st.sampled_from(_VARS))
            body_atoms.append(f"{pred}({left}, {right})")
            used_vars.extend([left, right])
        lines.append(f"{head}({used_vars[0]}, {used_vars[-1]}) :- "
                     + ", ".join(body_atoms) + ".")
    return "\n".join(lines)


@given(random_program())
@settings(max_examples=60, deadline=None)
def test_naive_equals_semi_naive(source: str):
    """Differential test: both engines derive identical fixpoints."""
    program = parse_program(source)
    naive = naive_evaluate(program)
    semi = SemiNaiveEngine(program).run()
    for predicate in program.predicates():
        assert naive.facts(predicate) == semi.facts(predicate), predicate


@given(random_program(), st.lists(
    st.tuples(constants, constants), max_size=5))
@settings(max_examples=40, deadline=None)
def test_incremental_equals_batch(source: str, extra_edges):
    """add_facts + continuation == evaluating everything at once."""
    program = parse_program(source)
    engine = SemiNaiveEngine(program)
    engine.run()
    engine.add_facts("e1", extra_edges)
    incremental = engine.run()
    batch = naive_evaluate(program, {"e1": extra_edges})
    for predicate in program.predicates():
        assert incremental.facts(predicate) == batch.facts(predicate)


@given(random_program())
@settings(max_examples=60, deadline=None)
def test_pretty_print_round_trip(source: str):
    """parse(pretty(parse(s))) == parse(s) structurally."""
    program = parse_program(source)
    rendered = program_to_source(program)
    reparsed = parse_program(rendered)
    assert reparsed.facts == program.facts
    assert reparsed.rules == program.rules
    assert reparsed.opens == program.opens


@given(st.lists(st.tuples(constants, constants), min_size=0, max_size=12))
@settings(max_examples=50, deadline=None)
def test_transitive_closure_against_networkx(edges):
    """Recursive Datalog closure equals networkx's reference closure."""
    import networkx as nx

    program = parse_program(
        "path(X, Y) :- edge(X, Y). path(X, Y) :- path(X, Z), edge(Z, Y)."
    )
    result = naive_evaluate(program, {"edge": edges})
    graph = nx.DiGraph()
    graph.add_nodes_from(range(5))
    graph.add_edges_from(edges)
    expected = set()
    for source_node in graph.nodes:
        for target in nx.descendants(graph, source_node):
            expected.add((source_node, target))
        if graph.has_edge(source_node, source_node):
            expected.add((source_node, source_node))
    # Datalog's closure includes x->x only via explicit cycles, matching the
    # descendants + self-loop construction above — except cycles longer than
    # one, which descendants() covers because x ∈ descendants(x) iff x is on
    # a cycle... it is NOT, so add cycle nodes explicitly.
    for node in graph.nodes:
        for succ in graph.successors(node):
            if node in nx.descendants(graph, succ) or succ == node:
                expected.add((node, node))
                break
    assert result.facts("path") == expected
