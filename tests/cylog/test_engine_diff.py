"""Randomized differential check of the evaluation pipeline.

Three implementations evaluate the same random stratified programs —
:func:`naive_evaluate` (the oracle), :class:`SemiNaiveEngine` with the
cost-based planner and :class:`SemiNaiveEngine` with the legacy planner —
and must agree on every predicate's fixpoint.  Unlike the monotone
round-trips in ``test_properties``, these programs exercise negation,
aggregation and comparisons, i.e. the paths where a planner bug (wrong
join order, wrong index key, bad delta rewrite) could silently change
results.

The incremental-vs-scratch lockstep oracle drives one retained engine
through randomized add/retract sequences and, after *every* run, compares
its ``RelationStore.snapshot()`` byte-for-byte against a fresh engine
evaluated from the same base facts — the gate for the cross-run
counting/DRed retraction machinery.

The CI ``engine-diff`` job runs this module with
``ENGINE_DIFF_EXAMPLES=200`` / ``INCR_DIFF_EXAMPLES=75`` so hundreds of
random programs and update streams gate every merge; the local defaults
keep the tier-1 suite fast.
"""

from __future__ import annotations

import os

import pytest
from diffgen import EDB as _EDB
from diffgen import (
    TREE_PROGRAM,
    apply_forest_op,
    forest_ops,
    stratified_program,
    update_ops,
)
from hypothesis import given, settings

import hypothesis.strategies as st

from repro.cylog.engine import SemiNaiveEngine, naive_evaluate
from repro.cylog.parser import parse_program
from repro.cylog.sharding import ShardConfig

EXAMPLES = int(os.environ.get("ENGINE_DIFF_EXAMPLES", "100"))
INCR_EXAMPLES = int(os.environ.get("INCR_DIFF_EXAMPLES", "25"))

pytestmark = pytest.mark.engine_diff

constants = st.integers(min_value=0, max_value=4)


@given(stratified_program())
@settings(max_examples=EXAMPLES, deadline=None)
def test_all_engines_agree(source: str):
    program = parse_program(source)
    oracle = naive_evaluate(program)
    cost = SemiNaiveEngine(program, planner="cost").run()
    legacy = SemiNaiveEngine(program, planner="legacy").run()
    for predicate in program.predicates():
        assert oracle.facts(predicate) == cost.facts(predicate), predicate
        assert oracle.facts(predicate) == legacy.facts(predicate), predicate


@given(stratified_program(), st.lists(st.tuples(constants, constants), max_size=4))
@settings(max_examples=EXAMPLES, deadline=None)
def test_fact_arrival_agrees_with_batch_oracle(source: str, extra_edges):
    """Facts arriving after the first run (the per-task-completion path)
    must land on the same fixpoint as evaluating everything at once —
    whether the engine continues incrementally (monotone) or re-runs."""
    program = parse_program(source)
    engine = SemiNaiveEngine(program)
    engine.run()
    engine.add_facts("e1", extra_edges)
    incremental = engine.run()
    batch = naive_evaluate(program, {"e1": extra_edges})
    for predicate in program.predicates():
        assert incremental.facts(predicate) == batch.facts(predicate), predicate


@given(stratified_program(), update_ops)
@settings(max_examples=INCR_EXAMPLES, deadline=None)
def test_incremental_add_retract_matches_scratch(source: str, ops):
    """Lockstep oracle for cross-run incrementality: after every single
    add/retract + run the retained engine's store must be byte-identical to
    a from-scratch evaluation over the same base facts, the reported deltas
    must equal the actual snapshot diff, and no hidden full re-run may
    have happened."""
    program = parse_program(source)
    engine = SemiNaiveEngine(program)
    previous = engine.run().relations
    base: dict[str, set] = {pred: set() for pred in _EDB}
    for fact in program.facts:
        base.setdefault(fact.atom.predicate, set()).add(
            tuple(t.value for t in fact.atom.terms)
        )
    for is_add, predicate, row in ops:
        if is_add:
            engine.add_facts(predicate, [row])
            base[predicate].add(row)
        else:
            engine.retract_facts(predicate, [row])
            base[predicate].discard(row)
        result = engine.run()
        scratch = SemiNaiveEngine(program)
        # A fresh engine re-loads the program facts; sync to `base` exactly.
        for pred, rows in base.items():
            stale = {
                r
                for fact in program.facts
                if fact.atom.predicate == pred
                for r in [tuple(t.value for t in fact.atom.terms)]
                if r not in rows
            }
            if stale:
                scratch.retract_facts(pred, stale)
            extra = rows - {
                tuple(t.value for t in fact.atom.terms)
                for fact in program.facts
                if fact.atom.predicate == pred
            }
            if extra:
                scratch.add_facts(pred, extra)
        expected = scratch.run().relations
        current = engine.store.snapshot()
        all_preds = set(expected) | set(current)
        for pred in all_preds:
            assert current.get(pred, frozenset()) == expected.get(
                pred, frozenset()
            ), pred
        # Reported deltas == actual snapshot diff.
        for pred in set(previous) | set(current):
            old = previous.get(pred, frozenset())
            new = current.get(pred, frozenset())
            assert result.added(pred) == new - old, pred
            assert result.removed(pred) == old - new, pred
        previous = current
    assert engine.runs == 1  # every update stayed incremental


@given(forest_ops())
@settings(max_examples=INCR_EXAMPLES, deadline=None)
def test_interval_leg_matches_fixpoint_lockstep(ops):
    """Interval-leg oracle: the retained interval-enabled engine is driven
    through random forest churn in lockstep with a retained fixpoint-only
    engine.  After every run the snapshots AND the reported added/removed
    deltas must be bit-identical — including across the sound-disable and
    re-enable transitions the non-forest ops provoke — and neither engine
    may fall back to a hidden full re-run."""
    program = parse_program(TREE_PROGRAM)
    interval = SemiNaiveEngine(program, shard_config=ShardConfig(interval=True))
    fixpoint = SemiNaiveEngine(program, shard_config=ShardConfig(interval=False))
    interval.run()
    fixpoint.run()
    for op in ops:
        apply_forest_op(interval, op)
        apply_forest_op(fixpoint, op)
        got = interval.run()
        want = fixpoint.run()
        current = interval.store.snapshot()
        expected = fixpoint.store.snapshot()
        for pred in set(expected) | set(current):
            assert current.get(pred, frozenset()) == expected.get(
                pred, frozenset()
            ), (pred, op)
        for pred in set(want.added_rows) | set(got.added_rows):
            assert got.added(pred) == want.added(pred), (pred, op)
        for pred in set(want.removed_rows) | set(got.removed_rows):
            assert got.removed(pred) == want.removed(pred), (pred, op)
    assert interval.runs == 1
    assert fixpoint.runs == 1
