"""Parser: grammar coverage and error reporting."""

import pytest

from repro.cylog.ast import (
    AggregateTerm,
    Assignment,
    Atom,
    Comparison,
    Const,
    Negation,
    Var,
)
from repro.cylog.errors import CyLogParseError, CyLogTypeError
from repro.cylog.parser import parse_program


class TestFacts:
    def test_simple_fact(self):
        program = parse_program('worker("ann").')
        assert program.facts[0].atom == Atom("worker", (Const("ann"),))

    def test_typed_constants(self):
        program = parse_program("p(1, 2.5, true, sym).")
        values = [t.value for t in program.facts[0].atom.terms]
        assert values == [1, 2.5, True, "sym"]

    def test_symbol_flag_preserved(self):
        program = parse_program('p(sym, "str").')
        terms = program.facts[0].atom.terms
        assert terms[0].symbol and not terms[1].symbol

    def test_zero_arity_fact(self):
        program = parse_program("flag().")
        assert program.facts[0].atom.arity == 0

    def test_fact_with_variable_rejected(self):
        with pytest.raises(CyLogParseError, match="ground"):
            parse_program("p(X).")

    def test_fact_with_aggregate_rejected(self):
        with pytest.raises(CyLogParseError, match="aggregate"):
            parse_program("p(count<X>).")


class TestRules:
    def test_simple_rule(self):
        program = parse_program("a(X) :- b(X).")
        rule = program.rules[0]
        assert rule.head.predicate == "a"
        assert rule.body == (Atom("b", (Var("X"),)),)

    def test_negation(self):
        program = parse_program("a(X) :- b(X), not c(X).")
        assert isinstance(program.rules[0].body[1], Negation)

    def test_comparisons(self):
        program = parse_program("a(X) :- b(X, Y), Y >= 3, X != Y.")
        body = program.rules[0].body
        assert isinstance(body[1], Comparison) and body[1].op == ">="
        assert isinstance(body[2], Comparison) and body[2].op == "!="

    def test_assignment(self):
        program = parse_program("a(X, Z) :- b(X, Y), Z = Y * 2 + 1.")
        assignment = program.rules[0].body[1]
        assert isinstance(assignment, Assignment)
        assert assignment.var == Var("Z")

    def test_arith_precedence(self):
        program = parse_program("a(Z) :- b(X, Y), Z = X + Y * 2.")
        expr = program.rules[0].body[1].expr
        assert expr.op == "+"           # * binds tighter
        assert expr.right.op == "*"

    def test_parenthesised_arith(self):
        program = parse_program("a(Z) :- b(X, Y), Z = (X + Y) * 2.")
        expr = program.rules[0].body[1].expr
        assert expr.op == "*"

    def test_aggregate_head(self):
        program = parse_program("n(G, count<X>) :- member(G, X).")
        head = program.rules[0].head
        assert head.has_aggregates
        assert head.terms[1] == AggregateTerm("count", Var("X"))
        assert head.group_by_vars() == (Var("G"),)

    def test_equality_without_variable_rejected(self):
        with pytest.raises(CyLogParseError, match="=="):
            parse_program("a(X) :- b(X), 3 = 4.")

    def test_anonymous_variable(self):
        program = parse_program("a(X) :- b(X, _).")
        assert program.rules[0].body[0].terms[1] == Var("_")

    def test_missing_period(self):
        with pytest.raises(CyLogParseError):
            parse_program("a(X) :- b(X)")

    def test_error_position_reported(self):
        try:
            parse_program("a(X) :- b(X) c(X).")
        except CyLogParseError as exc:
            assert exc.line == 1 and exc.column is not None
        else:  # pragma: no cover
            raise AssertionError("expected a parse error")


class TestOpenDecls:
    SOURCE = (
        "open verify(seg: text, cand: text, ok: bool) key (seg, cand) "
        'asking "Check {seg} vs {cand}" choices (true, false).'
    )

    def test_full_declaration(self):
        decl = parse_program(self.SOURCE).opens[0]
        assert decl.name == "verify"
        assert [p.type for p in decl.params] == ["text", "text", "bool"]
        assert decl.key == ("seg", "cand")
        assert decl.fill_columns == ("ok",)
        assert decl.choices[0].value is True

    def test_key_positions(self):
        decl = parse_program(self.SOURCE).opens[0]
        assert decl.key_positions == (0, 1)
        assert decl.fill_positions == (2,)

    def test_instruction_rendering(self):
        decl = parse_program(self.SOURCE).opens[0]
        out = decl.render_instruction({"seg": "s1", "cand": "c1"})
        assert out == "Check s1 vs c1"

    def test_default_instruction_without_asking(self):
        decl = parse_program("open rate(item: text, score: int) key (item).").opens[0]
        out = decl.render_instruction({"item": "p1"})
        assert "score" in out and "p1" in out

    def test_all_key_columns_rejected(self):
        with pytest.raises(CyLogParseError, match="fill"):
            parse_program("open p(a: text) key (a).")

    def test_unknown_type_rejected(self):
        with pytest.raises(CyLogParseError, match="type"):
            parse_program("open p(a: blob) key (a).")

    def test_choices_need_single_fill(self):
        with pytest.raises(CyLogParseError, match="choices"):
            parse_program(
                'open p(a: text, b: text, c: text) key (a) choices ("x").'
            )

    def test_open_cannot_be_rule_head(self):
        with pytest.raises(CyLogTypeError, match="rule head"):
            parse_program(
                "open p(a: text, b: text) key (a).\np(X, Y) :- q(X, Y)."
            )

    def test_open_cannot_be_fact(self):
        with pytest.raises(CyLogTypeError, match="fact"):
            parse_program('open p(a: text, b: text) key (a).\np("x", "y").')


class TestArityChecks:
    def test_inconsistent_arity_rejected(self):
        with pytest.raises(CyLogTypeError, match="arity"):
            parse_program("p(1). q(X) :- p(X, Y).")

    def test_open_arity_enforced(self):
        with pytest.raises(CyLogTypeError, match="arity"):
            parse_program(
                "open p(a: text, b: text) key (a).\nq(X) :- p(X)."
            )

    def test_program_predicates_listing(self):
        program = parse_program("p(1). q(X) :- p(X), not r(X).")
        assert program.predicates() == {"p", "q", "r"}
        assert program.idb_predicates() == {"q"}
