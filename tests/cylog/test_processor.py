"""The CyLog processor: demand-driven task generation and answer feedback."""

import pytest

from repro.cylog import CyLogProcessor
from repro.cylog.errors import CyLogTypeError

CHAIN = """
    open translate(seg: text, out: text) key (seg) asking "Translate {seg}".
    open verify(seg: text, cand: text, ok: bool) key (seg, cand)
        asking "Is {cand} ok for {seg}?" choices (true, false).
    segment("s1"). segment("s2").
    translated(S, T) :- segment(S), translate(S, T).
    approved(S, T) :- translated(S, T), verify(S, T, true).
    n_approved(count<S>) :- approved(S, T).
"""


@pytest.fixture
def processor():
    return CyLogProcessor(CHAIN)


class TestDemand:
    def test_initial_demand_only_first_stage(self, processor):
        pending = processor.pending_requests()
        assert {(r.predicate, r.key_values) for r in pending} == {
            ("translate", ("s1",)), ("translate", ("s2",)),
        }

    def test_request_instruction_rendered(self, processor):
        request = processor.request_for("translate", ("s1",))
        assert request.instruction == "Translate s1"

    def test_chained_demand_appears_after_answer(self, processor):
        request = processor.request_for("translate", ("s1",))
        processor.supply_answer(request, {"out": "S1-FR"})
        pending = {(r.predicate, r.key_values) for r in processor.pending_requests()}
        assert ("verify", ("s1", "S1-FR")) in pending
        assert ("translate", ("s1",)) not in pending

    def test_choices_exposed(self, processor):
        processor.supply_answer(
            processor.request_for("translate", ("s1",)), {"out": "X"}
        )
        verify = processor.request_for("verify", ("s1", "X"))
        assert verify.choices == (True, False)

    def test_quiescence_after_all_answers(self, processor):
        for segment in ("s1", "s2"):
            processor.supply_answer(
                processor.request_for("translate", (segment,)),
                {"out": f"{segment}-fr"},
            )
            processor.supply_answer(
                processor.request_for("verify", (segment, f"{segment}-fr")),
                {"ok": True},
            )
        assert processor.is_quiescent()
        assert processor.facts("n_approved") == {(2,)}

    def test_unknown_request_lookup(self, processor):
        with pytest.raises(CyLogTypeError, match="no task request"):
            processor.request_for("translate", ("zzz",))

    def test_new_facts_create_new_demand(self, processor):
        processor.add_facts("segment", [("s3",)])
        pending = {r.key_values for r in processor.pending_requests()
                   if r.predicate == "translate"}
        assert ("s3",) in pending

    def test_demand_listener_sees_batches(self):
        batches = []
        processor = CyLogProcessor(CHAIN)
        processor.add_demand_listener(batches.append)
        processor.run()
        assert len(batches) == 1 and len(batches[0]) == 2
        processor.supply_answer(
            processor.request_for("translate", ("s1",)), {"out": "x"}
        )
        processor.run()
        assert len(batches) == 2
        assert batches[1][0].predicate == "verify"

    def test_revocation_listener_sees_withdrawn_demand(self):
        """Retracting the seed fact withdraws the unanswered demand it
        created — the revocation listener hears exactly that request."""
        revoked = []
        processor = CyLogProcessor(CHAIN)
        processor.add_revocation_listener(revoked.extend)
        processor.run()
        assert revoked == []
        processor.retract_facts("segment", [("s2",)])
        assert [(r.predicate, r.key_values) for r in revoked] == [
            ("translate", ("s2",))
        ]
        pending = {r.key_values for r in processor.pending_requests()}
        assert ("s2",) not in pending

    def test_answered_demand_is_never_revoked(self):
        """The normal lifecycle — a demand disappearing because it was
        answered — must not look like a withdrawal."""
        revoked = []
        processor = CyLogProcessor(CHAIN)
        processor.add_revocation_listener(revoked.extend)
        processor.supply_answer(
            processor.request_for("translate", ("s1",)), {"out": "x"}
        )
        processor.run()
        assert revoked == []

    def test_revoked_demand_resurrects_as_fresh_request(self):
        """Retract the seed, revoke the demand, re-add the seed: the
        demand comes back as a *new* request batch (the old
        materialisation was cancelled; a consumer needs a new one)."""
        batches, revoked = [], []
        processor = CyLogProcessor(CHAIN)
        processor.add_demand_listener(batches.append)
        processor.add_revocation_listener(revoked.extend)
        processor.run()
        processor.retract_facts("segment", [("s2",)])
        assert len(revoked) == 1
        processor.add_facts("segment", [("s2",)])
        processor.run()
        fresh = [r for batch in batches[1:] for r in batch]
        assert [(r.predicate, r.key_values) for r in fresh] == [
            ("translate", ("s2",))
        ]

    def test_cascading_retraction_revokes_downstream_demand(self):
        """An answer whose upstream seed is retracted takes the chained
        verify demand down with it."""
        revoked = []
        processor = CyLogProcessor(CHAIN)
        processor.add_revocation_listener(revoked.extend)
        processor.supply_answer(
            processor.request_for("translate", ("s1",)), {"out": "X"}
        )
        processor.run()
        processor.retract_facts("segment", [("s1",)])
        assert ("verify", ("s1", "X")) in {
            (r.predicate, r.key_values) for r in revoked
        }


class TestAnswers:
    def test_answer_type_checked(self, processor):
        request = processor.request_for("translate", ("s1",))
        with pytest.raises(CyLogTypeError, match="expected text"):
            processor.supply_answer(request, {"out": 42})

    def test_missing_column_rejected(self, processor):
        request = processor.request_for("translate", ("s1",))
        with pytest.raises(CyLogTypeError, match="missing"):
            processor.supply_answer(request, {})

    def test_extra_column_rejected(self, processor):
        request = processor.request_for("translate", ("s1",))
        with pytest.raises(CyLogTypeError, match="unexpected"):
            processor.supply_answer(request, {"out": "x", "bogus": 1})

    def test_choice_answer_type_checked_first(self, processor):
        processor.supply_answer(
            processor.request_for("translate", ("s1",)), {"out": "X"}
        )
        verify = processor.request_for("verify", ("s1", "X"))
        with pytest.raises(CyLogTypeError, match="expected bool"):
            processor.supply_answer(verify, {"ok": "maybe"})  # type: ignore

    def test_choice_answer_outside_choice_set_rejected(self):
        processor = CyLogProcessor(
            "open pick(item: text, colour: text) key (item) "
            'choices ("red", "blue").\n'
            'item("p").\npicked(I, C) :- item(I), pick(I, C).'
        )
        request = processor.request_for("pick", ("p",))
        with pytest.raises(CyLogTypeError, match="choices"):
            processor.supply_answer(request, {"colour": "green"})

    def test_supply_fact_without_request(self, processor):
        processor.supply_fact("translate", {"seg": "s1"}, {"out": "direct"})
        assert ("s1", "direct") in processor.facts("translate")

    def test_supply_fact_non_open_rejected(self, processor):
        with pytest.raises(CyLogTypeError, match="not an open predicate"):
            processor.supply_fact("segment", {"seg": "s9"}, {})

    def test_multiple_answers_same_key_kept(self, processor):
        request = processor.request_for("translate", ("s1",))
        processor.supply_answer(request, {"out": "v1"})
        processor.supply_fact("translate", {"seg": "s1"}, {"out": "v2"})
        outs = {t[1] for t in processor.facts("translate") if t[0] == "s1"}
        assert outs == {"v1", "v2"}

    def test_float_answer_coerced(self):
        processor = CyLogProcessor(
            "open rate(item: text, score: float) key (item).\n"
            'item("p").\nrated(I, S) :- item(I), rate(I, S).'
        )
        request = processor.request_for("rate", ("p",))
        fact = processor.supply_answer(request, {"score": 4})
        assert fact == ("p", 4.0)
        assert isinstance(fact[1], float)

    def test_relation_sizes(self, processor):
        sizes = processor.relation_sizes()
        assert sizes["segment"] == 2


class TestRevocation:
    def test_revoked_answer_redemands_task(self, processor):
        """Answer supplied then revoked: the TaskRequest reappears in the
        pending set *and* is re-announced to demand listeners — the
        retraction-capable update refreshes demand eagerly."""
        batches = []
        processor.add_demand_listener(batches.append)
        request = processor.request_for("translate", ("s1",))
        processor.supply_answer(request, {"out": "S1-FR"})
        assert ("verify", ("s1", "S1-FR")) in {
            (r.predicate, r.key_values) for r in processor.pending_requests()
        }
        batches.clear()
        removed = processor.revoke_answer("translate", ("s1",))
        assert removed == 1
        # Eager refresh: the demand is back before any explicit run().
        reappeared = [
            (r.predicate, r.key_values)
            for batch in batches
            for r in batch
        ]
        assert ("translate", ("s1",)) in reappeared
        pending = {(r.predicate, r.key_values) for r in processor.pending_requests()}
        assert ("translate", ("s1",)) in pending
        # The downstream verify demand died with the retracted answer.
        assert ("verify", ("s1", "S1-FR")) not in pending

    def test_revoke_by_key_mapping(self, processor):
        processor.supply_fact("translate", {"seg": "s2"}, {"out": "X"})
        assert processor.revoke_answer("translate", {"seg": "s2"}) == 1
        assert processor.facts("translate") == frozenset()

    def test_revoke_removes_all_answers_for_key(self, processor):
        request = processor.request_for("translate", ("s1",))
        processor.supply_answer(request, {"out": "v1"})
        processor.supply_fact("translate", {"seg": "s1"}, {"out": "v2"})
        assert processor.revoke_answer("translate", ("s1",)) == 2
        assert processor.facts("translate") == frozenset()

    def test_revoke_non_open_rejected(self, processor):
        with pytest.raises(CyLogTypeError, match="not an open predicate"):
            processor.revoke_answer("segment", ("s1",))

    def test_retract_facts_refreshes_derived_state(self, processor):
        """Retracting a base fact eagerly withdraws the demand it seeded."""
        processor.retract_facts("segment", [("s2",)])
        pending = {r.key_values for r in processor.pending_requests()
                   if r.predicate == "translate"}
        assert pending == {("s1",)}

    def test_deltas_drain_across_runs(self, processor):
        request = processor.request_for("translate", ("s1",))
        processor.supply_answer(request, {"out": "FR"})
        processor.run()
        drained = processor.drain_deltas()
        assert drained["translated"][0] == frozenset({("s1", "FR")})
        assert processor.drain_deltas() == {}  # consumed
        processor.revoke_answer("translate", ("s1",))
        drained = processor.drain_deltas()
        assert drained["translated"][1] == frozenset({("s1", "FR")})

    def test_batched_revocation_defers_refresh(self, processor):
        request = processor.request_for("translate", ("s1",))
        processor.supply_answer(request, {"out": "FR"})
        with processor.batch():
            processor.revoke_answer("translate", ("s1",))
            processor.supply_fact("translate", {"seg": "s2"}, {"out": "Y"})
        pending = {r.key_values for r in processor.pending_requests()
                   if r.predicate == "translate"}
        assert pending == {("s1",)}
