"""Sharded store, executors and the shard-diff lockstep oracle.

The unit tests cover the sharded primitives directly; the hypothesis
tests (marked ``shard_diff``, run with ``SHARD_DIFF_EXAMPLES=60`` by the
CI ``shard-diff`` job) drive sharded/threaded engines through randomized
programs and add/retract streams in lockstep with a single-store engine
and require byte-identical snapshots after every run — the same
discipline as the ``engine-diff`` and ``platform-diff`` oracles.
"""

from __future__ import annotations

import os

import pytest
from diffgen import (
    EDB,
    TREE_PROGRAM,
    apply_forest_op,
    forest_ops,
    stratified_program,
    update_ops,
)
from hypothesis import given, settings

from repro.cylog import (
    SemiNaiveEngine,
    SerialExecutor,
    ShardConfig,
    ShardedRelationStore,
    ThreadedExecutor,
    parse_program,
)
from repro.cylog.engine import RelationStore
from repro.cylog.incremental import ShardedSupportIndex, SupportIndex
from repro.cylog.sharding import (
    ShardedRelation,
    shard_of,
    split_rows_by_shard,
)

SHARD_EXAMPLES = int(os.environ.get("SHARD_DIFF_EXAMPLES", "15"))

#: Serial / thread-pool configurations, with and without the exchange
#: operator (``exchange=False`` keeps the chained-lookup fallback and the
#: single store's plans on non-prefix join keys).
THREAD_CONFIGS = (
    ShardConfig(shards=1),
    ShardConfig(shards=2),
    ShardConfig(shards=8),
    ShardConfig(shards=8, exchange=False),
    ShardConfig(shards=2, executor="thread", max_workers=2, min_parallel_rows=0),
    ShardConfig(shards=8, executor="thread", max_workers=4, min_parallel_rows=0),
)

#: Process-pool configurations: replica stores synced by the engine's
#: mutation ledger, tasks shipped as picklable descriptors.
PROCESS_CONFIGS = (
    ShardConfig(shards=2, executor="process", max_workers=2, min_parallel_rows=0),
    ShardConfig(shards=8, executor="process", max_workers=2, min_parallel_rows=0),
)

#: Shard-pruned replica layouts: workers subscribe to the (relation,
#: shard) partitions their task classes probe, backfilled lazily —
#: ``shared`` additionally maps baseline partitions from shared memory.
#: Must be bit-identical to every other configuration.
PRUNED_CONFIGS = (
    ShardConfig(
        shards=8,
        executor="process",
        max_workers=2,
        min_parallel_rows=0,
        replica_mode="pruned",
    ),
)
SHARED_CONFIGS = (
    ShardConfig(
        shards=8,
        executor="process",
        max_workers=2,
        min_parallel_rows=0,
        replica_mode="shared",
    ),
)

#: The configurations the oracle compares against the single store.  The
#: CI ``shard-diff`` job matrix runs the thread, process and replica-mode
#: suites as separate entries (``SHARD_DIFF_SUITE``); everything runs by
#: default.
SHARD_CONFIGS = {
    "threads": THREAD_CONFIGS,
    "process": PROCESS_CONFIGS,
    "pruned": PRUNED_CONFIGS,
    "shared": SHARED_CONFIGS,
    "all": THREAD_CONFIGS + PROCESS_CONFIGS + PRUNED_CONFIGS + SHARED_CONFIGS,
}[os.environ.get("SHARD_DIFF_SUITE", "all")]


class TestShardedRelation:
    def test_routing_is_stable_and_partitioning(self):
        relation = ShardedRelation(2, 4)
        rows = [(i, i + 1) for i in range(40)]
        for row in rows:
            assert relation.add(row)
            assert not relation.add(row)  # idempotent
        assert len(relation) == 40
        assert sum(relation.shard_sizes()) == 40
        for row in rows:
            assert row in relation
            assert row in relation.shard(relation.shard_of(row))
        assert relation.snapshot() == frozenset(rows)

    def test_lookup_routes_on_key_prefix(self):
        relation = ShardedRelation(2, 8)
        relation.ensure_index((0,))
        relation.ensure_index((1,))
        for i in range(20):
            relation.add((i, i % 3))
        # Key covers position 0: routed probe, same answer as a scan.
        assert set(relation.lookup((0,), (7,))) == {(7, 1)}
        # Key does not cover position 0: chained across shards.
        chained = relation.lookup((1,), (0,))
        assert set(chained) == {(i, 0) for i in range(0, 20, 3)}
        assert len(chained) == 7
        assert bool(chained)
        # Full scan (no index positions).
        assert len(relation.lookup((), ())) == 20

    def test_discard_and_match(self):
        relation = ShardedRelation(2, 4)
        relation.add((1, 2))
        relation.add((1, 3))
        assert set(relation.match((1, None))) == {(1, 2), (1, 3)}
        assert relation.discard((1, 2))
        assert not relation.discard((1, 2))
        assert set(relation.match((1, None))) == {(1, 3)}

    def test_zero_shard_of_empty_row(self):
        assert shard_of((), 8) == 0
        assert shard_of(("x",), 1) == 0

    def test_routing_follows_python_equality(self):
        """The store's sets/buckets conflate 1 == 1.0 == True; routing
        must agree or a sharded lookup misses rows the single store
        finds (strict bool/int filtering happens after the probe)."""
        for n in (2, 3, 8):
            assert shard_of((1,), n) == shard_of((1.0,), n) == shard_of((True,), n)
            assert shard_of((0,), n) == shard_of((0.0,), n) == shard_of((False,), n)

    def test_numeric_key_conflation_matches_single_store(self):
        """Regression: int-keyed lookup must find a float-keyed row (and
        wildcard retraction must keep strict-equality semantics) exactly
        as on the single store."""
        source = "j(X) :- k(X), m(X, Y).\nd(X) :- k(X), m(X, _)."
        program = parse_program(source)
        expected = None
        for config in (ShardConfig(), ShardConfig(shards=8)):
            engine = SemiNaiveEngine(program, shard_config=config)
            engine.add_facts("k", [(1,)])
            engine.add_facts("m", [(1.0, "x"), (True, "y")])
            engine.run()
            engine.retract_facts("m", [(1.0, "x")])
            engine.run()
            snapshot = engine.store.snapshot()
            if expected is None:
                expected = snapshot
            else:
                assert snapshot == expected

    def test_split_rows_by_shard_partitions(self):
        rows = {(i, 0) for i in range(50)}
        parts = split_rows_by_shard(rows, 8)
        assert [shard for shard, _ in parts] == sorted(shard for shard, _ in parts)
        recombined: set = set()
        for shard, chunk in parts:
            assert all(shard_of(row, 8) == shard for row in chunk)
            recombined |= chunk
        assert recombined == rows

    def test_split_rows_by_shard_empty_delta(self):
        assert split_rows_by_shard(set(), 8) == []
        assert split_rows_by_shard([], 1) == []

    def test_split_rows_by_shard_single_shard(self):
        rows = {(i, i + 1) for i in range(20)}
        parts = split_rows_by_shard(rows, 1)
        assert parts == [(0, rows)]

    def test_split_rows_by_shard_all_rows_to_one_shard(self):
        # Identical routing values land every row in one shard — the skew
        # extreme: one task carries the whole delta, none are empty.
        rows = {("hot", i) for i in range(30)}
        parts = split_rows_by_shard(rows, 8)
        assert len(parts) == 1
        shard, chunk = parts[0]
        assert shard == shard_of(("hot", 0), 8)
        assert chunk == rows

    def test_split_rows_by_shard_position_routes_on_join_key(self):
        rows = {(i, i % 5) for i in range(40)}
        parts = split_rows_by_shard(rows, 8, position=1)
        assert {shard for shard, _ in parts} == {
            shard_of(row, 8, 1) for row in rows
        }
        for shard, chunk in parts:
            assert all(shard_of(row, 8, 1) == shard for row in chunk)
        assert set().union(*(chunk for _, chunk in parts)) == rows


class TestExchangeRepartition:
    def _filled(self, repartition: bool) -> ShardedRelation:
        relation = ShardedRelation(
            2, 8, index_specs=((1,),), repartition_positions=(1,) if repartition else ()
        )
        for i in range(60):
            relation.add((i, i % 7))
        return relation

    def test_routed_lookup_equals_chained_lookup(self):
        """The repartition answers non-prefix probes with exactly the rows
        the chained per-shard scan finds — for every key, hit or miss."""
        chained, routed = self._filled(False), self._filled(True)
        assert routed.repartition_positions() == (1,)
        for key in range(-2, 10):
            expect = set(chained.lookup((1,), (key,)))
            assert set(routed.lookup((1,), (key,))) == expect, key
            assert len(routed.lookup((1,), (key,))) == len(expect)

    def test_repartition_maintained_on_add_and_discard(self):
        relation = self._filled(True)
        assert relation.add((100, 3))
        assert set(relation.lookup((1,), (3,))) == {
            (i, 3) for i in range(3, 60, 7)
        } | {(100, 3)}
        assert relation.discard((100, 3))
        assert relation.discard((3, 3))
        assert set(relation.lookup((1,), (3,))) == {(i, 3) for i in range(10, 60, 7)}

    def test_late_registration_backfills(self):
        relation = self._filled(False)
        relation.ensure_repartition(1)
        chained = self._filled(False)
        for key in range(7):
            assert set(relation.lookup((1,), (key,))) == set(
                chained.lookup((1,), (key,))
            )

    def test_prefix_keys_still_route_primary(self):
        relation = self._filled(True)
        assert set(relation.lookup((0,), (7,))) == {(7, 0)}
        assert set(relation.lookup((0, 1), (7, 0))) == {(7, 0)}

    def test_position_validation(self):
        relation = ShardedRelation(2, 4)
        relation.ensure_repartition(0)  # the primary partition: a no-op
        assert relation.repartition_positions() == ()
        with pytest.raises(ValueError):
            relation.ensure_repartition(2)
        with pytest.raises(ValueError):
            relation.ensure_repartition(-1)

    def test_store_registers_specs_and_late_repartitions(self):
        store = ShardedRelationStore(4, repartition_specs={"edge": (1,)})
        edge = store.get("edge", 2)
        assert edge.repartition_positions() == (1,)
        other = store.get("other", 3)
        assert other.repartition_positions() == ()
        for i in range(20):
            other.add((i, i % 3, i % 5))
        store.ensure_repartition("other", 2)
        assert other.repartition_positions() == (2,)
        assert set(other.lookup((2,), (4,))) == {(i, i % 3, 4) for i in range(4, 20, 5)}
        # Registration for a predicate that does not exist yet applies on
        # creation (runtime-built plans may precede the first fact).
        store.ensure_repartition("later", 1)
        assert store.get("later", 2).repartition_positions() == (1,)

    def test_snapshot_ignores_repartitions(self):
        plain, repartitioned = self._filled(False), self._filled(True)
        assert repartitioned.snapshot() == plain.snapshot()
        assert len(repartitioned) == len(plain)


class TestShardedRelationStore:
    def test_snapshot_matches_single_store(self):
        single = RelationStore()
        sharded = ShardedRelationStore(8)
        for store in (single, sharded):
            rel = store.get("edge", 2)
            for i in range(30):
                rel.add((i, i + 1))
            store.get("empty", 1)
        assert sharded.snapshot() == single.snapshot()
        assert sharded.fingerprint() == single.fingerprint()
        assert sharded.predicates() == single.predicates()

    def test_shard_fingerprints_are_stable(self):
        a, b = ShardedRelationStore(4), ShardedRelationStore(4)
        for store in (a, b):
            rel = store.get("edge", 2)
            for i in range(30):
                rel.add((i, i + 1))
        assert a.shard_fingerprints() == b.shard_fingerprints()
        assert len(a.shard_fingerprints()) == 4

    def test_arity_mismatch_raises(self):
        from repro.cylog.errors import CyLogTypeError

        store = ShardedRelationStore(2)
        store.get("p", 2)
        with pytest.raises(CyLogTypeError):
            store.get("p", 3)


class TestExecutors:
    def test_serial_preserves_order(self):
        executor = SerialExecutor()
        assert executor.map([lambda i=i: i * i for i in range(10)]) == [
            i * i for i in range(10)
        ]

    def test_thread_pool_preserves_order(self):
        executor = ThreadedExecutor(max_workers=4)
        try:
            assert executor.map([lambda i=i: i * i for i in range(50)]) == [
                i * i for i in range(50)
            ]
        finally:
            executor.close()

    def test_thread_pool_propagates_errors(self):
        executor = ThreadedExecutor(max_workers=2)

        def boom():
            raise RuntimeError("task failed")

        try:
            with pytest.raises(RuntimeError, match="task failed"):
                executor.map([lambda: 1, boom, lambda: 3])
        finally:
            executor.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(shards=0)
        with pytest.raises(ValueError):
            ShardConfig(executor="fork")
        with pytest.raises(ValueError):
            ThreadedExecutor(max_workers=0)

    def test_process_executor_config(self):
        from repro.cylog import ProcessExecutor

        config = ShardConfig(shards=4, executor="process", max_workers=2)
        executor = config.build_executor()
        try:
            assert isinstance(executor, ProcessExecutor)
            assert executor.distributed
            assert executor.workers == 2
        finally:
            executor.close()
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)

    def test_plan_shards_follows_exchange_flag(self):
        assert ShardConfig(shards=8).plan_shards == 8
        assert ShardConfig(shards=8, exchange=False).plan_shards == 1
        assert ShardConfig().plan_shards == 1


class TestShardedSupportIndex:
    def test_behaves_like_plain_index(self):
        plain, sharded = SupportIndex(), ShardedSupportIndex(4)
        key_a = (0, (("e", (1, None)),))
        key_b = (1, (("e", (1, 2)), ("e", (None, 3))))
        for index in (plain, sharded):
            assert index.add("d", (1,), key_a)
            assert not index.add("d", (1,), key_a)
            assert index.add("d", (1,), key_b)
            assert index.count("d", (1,)) == 2
        for row in [(1, 2), (1, 9), (2, 3), (9, 9)]:
            expect = sorted(plain.dependents("e", row), key=repr)
            got = sorted(sharded.dependents("e", row), key=repr)
            assert got == expect, row
        for index in (plain, sharded):
            assert index.drop("d", (1,), key_a) == 1
            index.discard_tuple("d", (1,))
            assert index.count("d", (1,)) == 0
            assert index.dependents("e", (1, 2)) == []

    def test_merge_from_is_a_set_union(self):
        main, scratch = ShardedSupportIndex(4), SupportIndex()
        key = (0, (("e", (1, 2)),))
        scratch.add("d", (1,), key)
        scratch.add("d", (2,), (0, (("e", (2, None)),)))
        main.add("d", (1,), key)  # overlap: merge must not double-count
        assert main.merge_from(scratch) == 1
        assert len(main) == 2


class TestWriteAwareReplan:
    """Acceptance gate for write-aware exchange costing: a write-heavy
    stream on a repartitioned relation demotes the repartition to chained
    probes mid-stream — without changing a single derived row."""

    SOURCE = "j(L, R) :- left(L, K), right(R, K)."

    def _probe_for(self, engine, predicate):
        for rule in engine._active.rules:
            for step in rule.join_plan.steps:
                if step.literal.predicate == predicate:
                    return step
        raise AssertionError(predicate)

    def test_write_heavy_stream_demotes_repartition(self):
        program = parse_program(self.SOURCE)
        reference = SemiNaiveEngine(program)
        engine = SemiNaiveEngine(program, shard_config=ShardConfig(shards=8))
        try:
            for e in (reference, engine):
                e.add_facts("left", [(i, i % 4) for i in range(4)])
                e.add_facts("right", [(i, i % 4) for i in range(8)])
                e.run()
            # The non-prefix probe on ``right`` starts repartition-routed.
            assert self._probe_for(engine, "right").exchange_position == 1
            previous: list = []
            for round_ in range(5):
                adds = [(1000 + round_ * 100 + i, i % 4) for i in range(60)]
                for e in (reference, engine):
                    e.add_facts("right", adds)
                    if previous:
                        e.retract_facts("right", previous)
                previous = adds
                expected = reference.run()
                result = engine.run()
                assert result.added_rows == expected.added_rows
                assert result.removed_rows == expected.removed_rows
                assert engine.store.snapshot() == reference.store.snapshot()
            # The observed churn on ``right`` crossed the break-even and
            # the planner dropped its repartitioned copy.
            assert engine.stats.write_replans >= 1
            demoted = self._probe_for(engine, "right")
            assert demoted.exchange_position is None
            assert demoted.chained
            assert engine.runs == 1  # every update stayed incremental
        finally:
            reference.close()
            engine.close()

    def test_quiet_stream_never_replans(self):
        program = parse_program(self.SOURCE)
        engine = SemiNaiveEngine(program, shard_config=ShardConfig(shards=8))
        try:
            engine.add_facts("left", [(i, i % 4) for i in range(40)])
            engine.add_facts("right", [(i, i % 4) for i in range(40)])
            engine.run()
            engine.add_facts("right", [(100, 0)])
            engine.run()
            assert engine.stats.write_replans == 0
            assert self._probe_for(engine, "right").exchange_position == 1
        finally:
            engine.close()


def _engine_with(program, config: ShardConfig) -> SemiNaiveEngine:
    return SemiNaiveEngine(program, shard_config=config)


def _sync_base(engine: SemiNaiveEngine, program, base: dict[str, set]) -> None:
    """Drive a fresh engine's base facts to exactly ``base``."""
    program_rows = {
        pred: {
            tuple(t.value for t in fact.atom.terms)
            for fact in program.facts
            if fact.atom.predicate == pred
        }
        for pred in base
    }
    for pred, rows in base.items():
        stale = program_rows.get(pred, set()) - rows
        if stale:
            engine.retract_facts(pred, stale)
        extra = rows - program_rows.get(pred, set())
        if extra:
            engine.add_facts(pred, extra)


@pytest.mark.shard_diff
@given(stratified_program())
@settings(max_examples=SHARD_EXAMPLES, deadline=None)
def test_sharded_engines_agree_on_fixpoint(source: str):
    """Every shard/executor configuration lands on the byte-identical
    fixpoint of the single-store serial engine."""
    program = parse_program(source)
    reference = SemiNaiveEngine(program)
    expected = reference.run().relations
    expected_fp = reference.store.fingerprint()
    for config in SHARD_CONFIGS:
        engine = _engine_with(program, config)
        try:
            result = engine.run()
            assert result.relations == expected, config
            assert engine.store.fingerprint() == expected_fp, config
        finally:
            engine.close()


@pytest.mark.shard_diff
@given(stratified_program(), update_ops)
@settings(max_examples=SHARD_EXAMPLES, deadline=None)
def test_sharded_add_retract_lockstep(source: str, ops):
    """Randomized add/retract streams run in lockstep on every sharded /
    threaded configuration and on the single store; after *every* run the
    snapshots and the reported deltas must be byte-identical, and no
    configuration may fall back to a hidden full re-run."""
    program = parse_program(source)
    reference = SemiNaiveEngine(program)
    engines = [_engine_with(program, config) for config in SHARD_CONFIGS]
    try:
        reference.run()
        for engine in engines:
            engine.run()
        for is_add, predicate, row in ops:
            for engine in (reference, *engines):
                if is_add:
                    engine.add_facts(predicate, [row])
                else:
                    engine.retract_facts(predicate, [row])
            expected = reference.run()
            expected_snapshot = reference.store.snapshot()
            for engine, config in zip(engines, SHARD_CONFIGS):
                result = engine.run()
                assert engine.store.snapshot() == expected_snapshot, config
                assert result.added_rows == expected.added_rows, config
                assert result.removed_rows == expected.removed_rows, config
        assert reference.runs == 1
        for engine in engines:
            assert engine.runs == 1  # every update stayed incremental
    finally:
        for engine in engines:
            engine.close()


@pytest.mark.shard_diff
@given(stratified_program(), update_ops)
@settings(max_examples=max(5, SHARD_EXAMPLES // 3), deadline=None)
def test_sharded_matches_scratch_reload(source: str, ops):
    """After the whole stream, a sharded engine's retained store equals a
    from-scratch single-store evaluation over the same base facts."""
    program = parse_program(source)
    engine = _engine_with(
        program, ShardConfig(shards=8, executor="thread", max_workers=2)
    )
    try:
        engine.run()
        base: dict[str, set] = {pred: set() for pred in EDB}
        for fact in program.facts:
            base.setdefault(fact.atom.predicate, set()).add(
                tuple(t.value for t in fact.atom.terms)
            )
        for is_add, predicate, row in ops:
            if is_add:
                engine.add_facts(predicate, [row])
                base[predicate].add(row)
            else:
                engine.retract_facts(predicate, [row])
                base[predicate].discard(row)
            engine.run()
        scratch = SemiNaiveEngine(program)
        _sync_base(scratch, program, base)
        expected = scratch.run().relations
        current = engine.store.snapshot()
        # A retained engine keeps an emptied relation in its snapshot; a
        # from-scratch engine never creates it.  Same normalisation as the
        # engine-diff oracle: missing == empty.
        for pred in set(expected) | set(current):
            assert current.get(pred, frozenset()) == expected.get(
                pred, frozenset()
            ), pred
    finally:
        engine.close()


@pytest.mark.shard_diff
@given(forest_ops())
@settings(max_examples=SHARD_EXAMPLES, deadline=None)
def test_interval_leg_sharded_lockstep(ops):
    """Interval leg of the shard-diff oracle: random forest churn runs in
    lockstep on every sharded/threaded/process configuration (interval on,
    the default) and on a single-store *fixpoint-only* reference.  After
    every run the snapshots and reported deltas must be byte-identical —
    the interval index lives engine-side, so no executor, shard count or
    replica mode may perturb what it derives."""
    program = parse_program(TREE_PROGRAM)
    reference = SemiNaiveEngine(program, shard_config=ShardConfig(interval=False))
    engines = [_engine_with(program, config) for config in SHARD_CONFIGS]
    try:
        reference.run()
        for engine in engines:
            engine.run()
        for op in ops:
            for engine in (reference, *engines):
                apply_forest_op(engine, op)
            expected = reference.run()
            expected_snapshot = reference.store.snapshot()
            for engine, config in zip(engines, SHARD_CONFIGS):
                result = engine.run()
                assert engine.store.snapshot() == expected_snapshot, (config, op)
                assert result.added_rows == expected.added_rows, (config, op)
                assert result.removed_rows == expected.removed_rows, (config, op)
        for engine in (reference, *engines):
            assert engine.runs == 1  # every update stayed incremental
    finally:
        for engine in engines:
            engine.close()


def _determinism_program():
    source = "\n".join(
        [
            *(f"link({i}, {i + 1})." for i in range(60)),
            *(f"link({i}, {i + 20})." for i in range(0, 40, 3)),
            "source(0).",
            "source(7).",
            "reach(S, Y) :- source(S), link(S, Y).",
            "reach(S, Y) :- link(X, Y), reach(S, X).",
            "touched(X) :- link(X, _).",
            "quiet(X, Y) :- link(X, Y), not reach(X, Y).",
            "fanout(X, count<Y>) :- link(X, Y).",
        ]
    )
    return parse_program(source)


#: Executor-transport telemetry: how rows *moved*, not what was derived.
#: ``sync_rows``/``sync_bytes`` count the engine's canonical change sets
#: (zero on non-distributed executors); ``replica_backfills`` /
#: ``shared_mem_remaps`` count per-executor replica work and legitimately
#: vary across executors, replica modes and worker counts.  Everything
#: *outside* this set must be byte-identical everywhere.
TRANSPORT_KEYS = (
    "sync_rows",
    "sync_bytes",
    "replica_backfills",
    "shared_mem_remaps",
)


def _derivation_only(stats: dict) -> dict:
    stats = dict(stats)
    for key in TRANSPORT_KEYS:
        stats.pop(key)
    return stats


class TestExecutorDeterminism:
    """Satellite gate: fixed-seed runs at worker counts 1/2/8 produce
    identical results *and* identical derivation counters — on the thread
    pool and on the process pool, in every replica mode."""

    WORKER_COUNTS = (1, 2, 8)

    def _run_all(self, executor: str = "thread", replica_mode: str = "full"):
        program = _determinism_program()
        outcomes = []
        for workers in self.WORKER_COUNTS:
            engine = SemiNaiveEngine(
                program,
                shard_config=ShardConfig(
                    shards=8,
                    executor=executor,
                    max_workers=workers,
                    min_parallel_rows=0,
                    replica_mode=replica_mode,
                ),
            )
            try:
                first = engine.run()
                engine.retract_facts("link", [(5, 6), (9, 10)])
                engine.add_facts("link", [(100, 101), (5, 100)])
                second = engine.run()
                outcomes.append((first, second, engine.stats.as_dict()))
            finally:
                engine.close()
        return outcomes

    def test_results_and_stats_identical_at_any_worker_count(self):
        outcomes = self._run_all()
        baseline_first, baseline_second, baseline_stats = outcomes[0]
        for first, second, stats in outcomes[1:]:
            assert first.relations == baseline_first.relations
            assert second.relations == baseline_second.relations
            assert second.added_rows == baseline_second.added_rows
            assert second.removed_rows == baseline_second.removed_rows
            # Derivation counters — not just the fixpoint — must be
            # executor-independent: the serial merge does all counting.
            assert stats == baseline_stats

    def test_process_pool_matches_thread_pool_bit_for_bit(self):
        """Same program, same updates: every process-pool run must equal
        the thread-pool baseline — results, deltas and the full counter
        record except ``shard_tasks`` (the thread pool additionally fans
        out whole stratum batches, which the process pool keeps inline)
        and the transport telemetry (threads never ship rows)."""
        thread_outcomes = self._run_all("thread")
        process_outcomes = self._run_all("process")
        for (t_first, t_second, t_stats), (p_first, p_second, p_stats) in zip(
            thread_outcomes, process_outcomes
        ):
            assert p_first.relations == t_first.relations
            assert p_second.relations == t_second.relations
            assert p_second.added_rows == t_second.added_rows
            assert p_second.removed_rows == t_second.removed_rows
            t_stats = _derivation_only(t_stats)
            p_stats = _derivation_only(p_stats)
            t_stats.pop("shard_tasks"), p_stats.pop("shard_tasks")
            assert p_stats == t_stats
        baseline = process_outcomes[0][2]
        for _, _, stats in process_outcomes[1:]:
            # Full mode: even the transport counters are worker-count
            # independent (sync volume is canonical; no backfills).
            assert stats == baseline

    def test_replica_modes_bit_identical(self):
        """Pruned and shared replicas produce the same results, deltas,
        derivation counters *and canonical sync volume* as full replicas
        at every worker count — pruning changes what each worker holds,
        never what the engine derives or how much it mutated."""
        by_mode = {
            mode: self._run_all("process", replica_mode=mode)
            for mode in ("full", "pruned", "shared")
        }
        for full, pruned, shared in zip(*by_mode.values()):
            f_first, f_second, f_stats = full
            for first, second, stats in (pruned, shared):
                assert first.relations == f_first.relations
                assert second.relations == f_second.relations
                assert second.added_rows == f_second.added_rows
                assert second.removed_rows == f_second.removed_rows
                assert _derivation_only(stats) == _derivation_only(f_stats)
                # Sync volume counts the engine's change sets, not the
                # per-worker shipping — identical across replica modes.
                assert stats["sync_rows"] == f_stats["sync_rows"]
                assert stats["sync_bytes"] == f_stats["sync_bytes"]
        for mode, outcomes in by_mode.items():
            baseline = _derivation_only(outcomes[0][2])
            for _, _, stats in outcomes[1:]:
                assert _derivation_only(stats) == baseline, mode

    def test_replica_telemetry_deterministic(self):
        """Pruned/shared transport telemetry is exercised (backfills
        happen, shared memory maps happen) and a repeated identical run
        reproduces every counter byte-for-byte — transport included."""
        pruned_a = self._run_all("process", replica_mode="pruned")
        pruned_b = self._run_all("process", replica_mode="pruned")
        for (_, _, stats_a), (_, _, stats_b) in zip(pruned_a, pruned_b):
            assert stats_a == stats_b
        assert all(stats["sync_rows"] > 0 for _, _, stats in pruned_a)
        assert all(stats["replica_backfills"] > 0 for _, _, stats in pruned_a)
        shared = self._run_all("process", replica_mode="shared")
        assert all(stats["shared_mem_remaps"] > 0 for _, _, stats in shared)

    def test_incremental_runs_stay_incremental(self):
        for _, second, stats in self._run_all():
            assert stats["incremental_runs"] == 1
            assert second.has_changes()

    def _run_interval(self, executor: str):
        """Fixed tree churn on an interval-eligible program at worker
        counts 1/2/8."""
        program = parse_program(TREE_PROGRAM)
        outcomes = []
        for workers in self.WORKER_COUNTS:
            engine = SemiNaiveEngine(
                program,
                shard_config=ShardConfig(
                    shards=8,
                    executor=executor,
                    max_workers=workers,
                    min_parallel_rows=0,
                ),
            )
            try:
                engine.add_facts("edge", [(i, i + 1) for i in range(40)])
                engine.add_facts("edge", [(i, i + 100) for i in range(0, 40, 5)])
                first = engine.run()
                engine.retract_facts("edge", [(10, 11)])
                engine.add_facts("edge", [(200, 10), (39, 40)])
                second = engine.run()
                outcomes.append((first, second, engine.stats.as_dict()))
            finally:
                engine.close()
        return outcomes

    def test_interval_stats_identical_at_any_worker_count(self):
        """The interval index lives engine-side and steps serially, so its
        counters — like every other derivation counter — are worker-count
        and executor independent."""
        by_executor = {
            executor: self._run_interval(executor)
            for executor in ("serial", "thread", "process")
        }
        serial_first, serial_second, serial_stats = by_executor["serial"][0]
        assert serial_stats["interval_scans"] > 0  # the path actually engaged
        for executor, outcomes in by_executor.items():
            for first, second, stats in outcomes:
                assert first.relations == serial_first.relations, executor
                assert second.added_rows == serial_second.added_rows, executor
                assert second.removed_rows == serial_second.removed_rows, executor
                derivation = _derivation_only(stats)
                baseline = _derivation_only(serial_stats)
                derivation.pop("shard_tasks"), baseline.pop("shard_tasks")
                assert derivation == baseline, executor
