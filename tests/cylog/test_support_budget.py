"""Support-index memory budget: bounded provenance, identical results.

A budgeted engine drops derivation records once the index reaches its
cap; correctness is preserved because dropped provenance can only make a
derived tuple wrongly *survive* a deletion — and the engine compensates
by recomputing degraded strata whenever removal work reaches them.  The
tests drive a budgeted and an unbudgeted engine through the same
add/retract churn and require identical snapshots throughout, while
asserting the budget actually bit (evictions observed, fallback
recomputes triggered, index size bounded).
"""

from __future__ import annotations

import pytest

from repro.config import RuntimeConfig
from repro.cylog import CyLogProcessor, SemiNaiveEngine, ShardConfig, parse_program
from repro.cylog.incremental import SupportIndex

#: Interval pinned off throughout: the ``path`` closure below is
#: interval-eligible, and interval-owned rows carry no supports — the
#: budget these tests exist to exercise would never fill.
_NO_INTERVAL = ShardConfig(interval=False)

_PROGRAM = """
edge("a","b"). edge("b","c"). edge("c","d"). edge("d","e").
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y), edge(Y,Z).
blocked(X) :- node(X), not path("a", X).
"""

_CHURN = [
    ("add", "edge", [("e", "f"), ("f", "g")]),
    ("add", "node", [("b",), ("g",), ("z",)]),
    ("retract", "edge", [("b", "c")]),
    ("add", "edge", [("b", "x"), ("x", "c")]),
    ("retract", "edge", [("a", "b")]),
    ("add", "edge", [("a", "b")]),
    ("retract", "edge", [("c", "d"), ("e", "f")]),
    ("retract", "node", [("z",)]),
]


def _drive(engine: SemiNaiveEngine) -> list[dict]:
    snapshots = [engine.run().relations]
    for kind, predicate, rows in _CHURN:
        if kind == "add":
            engine.add_facts(predicate, rows)
        else:
            engine.retract_facts(predicate, rows)
        snapshots.append(engine.run().relations)
    return snapshots


class TestSupportIndexBudget:
    def test_admission_cap_and_degradation(self):
        index = SupportIndex(budget=2)
        assert index.add("p", (1,), (0, ()))
        assert index.add("p", (2,), (0, ()))
        assert len(index) == 2
        assert not index.add("q", (3,), (0, ()))  # refused at budget
        assert index.evicted == 1
        assert index.degraded_any({"q"})
        assert not index.degraded_any({"p"})
        index.drop("p", (1,), (0, ()))
        assert len(index) == 1
        assert index.add("q", (3,), (0, ()))  # room again
        index.clear_degraded({"q"})
        assert not index.degraded_any({"q"})

    def test_discard_tuple_releases_budget(self):
        index = SupportIndex(budget=2)
        index.add("p", (1,), (0, (("b", (1,)),)))
        index.add("p", (1,), (1, (("b", (1,)),)))
        index.discard_tuple("p", (1,))
        assert len(index) == 0
        assert index.add("p", (2,), (0, ()))

    def test_duplicate_add_is_not_an_eviction(self):
        index = SupportIndex(budget=1)
        assert index.add("p", (1,), (0, ()))
        assert not index.add("p", (1,), (0, ()))  # duplicate, under budget
        assert index.evicted == 0


class TestBudgetedEngineLockstep:
    def test_snapshots_identical_and_budget_bites(self):
        program = parse_program(_PROGRAM)
        reference = SemiNaiveEngine(program, shard_config=_NO_INTERVAL)
        budgeted = SemiNaiveEngine(
            program, shard_config=_NO_INTERVAL, support_budget=3
        )
        assert _drive(reference) == _drive(budgeted)
        assert budgeted.stats.supports_evicted > 0
        assert budgeted.stats.stratum_recomputes > 0
        assert reference.stats.supports_evicted == 0
        assert reference.stats.stratum_recomputes == 0
        # The invariant the budget exists for: bounded provenance.
        assert len(budgeted._supports) <= 3

    def test_zero_budget_disables_provenance_entirely(self):
        program = parse_program(_PROGRAM)
        reference = SemiNaiveEngine(program, shard_config=_NO_INTERVAL)
        budgeted = SemiNaiveEngine(
            program, shard_config=_NO_INTERVAL, support_budget=0
        )
        assert _drive(reference) == _drive(budgeted)
        assert len(budgeted._supports) == 0

    @pytest.mark.parametrize("budget", [1, 5, 25])
    def test_budget_sweep(self, budget):
        program = parse_program(_PROGRAM)
        reference = SemiNaiveEngine(program, shard_config=_NO_INTERVAL)
        budgeted = SemiNaiveEngine(
            program, shard_config=_NO_INTERVAL, support_budget=budget
        )
        assert _drive(reference) == _drive(budgeted)
        assert len(budgeted._supports) <= budget

    def test_sharded_budgeted_engine_matches(self):
        program = parse_program(_PROGRAM)
        reference = SemiNaiveEngine(program, shard_config=_NO_INTERVAL)
        budgeted = SemiNaiveEngine(
            program,
            shard_config=ShardConfig(shards=4, interval=False),
            support_budget=3,
        )
        assert _drive(reference) == _drive(budgeted)
        assert budgeted.stats.supports_evicted > 0

    def test_full_run_resets_index_but_not_cumulative_evictions(self):
        program = parse_program(_PROGRAM)
        engine = SemiNaiveEngine(
            program, shard_config=_NO_INTERVAL, support_budget=3
        )
        _drive(engine)
        evicted_before = engine.stats.supports_evicted
        assert evicted_before > 0
        engine.run(full=True)
        assert engine.stats.supports_evicted >= evicted_before

    def test_processor_level_budget(self):
        source = """
        open translate(seg: text, out: text) key (seg) asking "t {seg}".
        segment("a"). segment("b"). segment("c").
        translated(S, T) :- segment(S), translate(S, T).
        """
        unbudgeted = CyLogProcessor(source)
        budgeted = CyLogProcessor(source, config=RuntimeConfig(support_budget=1))
        for processor in (unbudgeted, budgeted):
            for seg in ("a", "b"):
                processor.supply_answer(
                    processor.request_for("translate", (seg,)), {"out": seg.upper()}
                )
        assert budgeted.facts("translated") == unbudgeted.facts("translated")
        assert budgeted.engine.stats.supports_evicted > 0
