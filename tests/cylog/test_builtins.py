"""Runtime arithmetic/comparison semantics."""

import pytest

from repro.cylog.ast import BinArith, Const, Var
from repro.cylog.builtins import apply_arith, apply_comparison, eval_expr
from repro.cylog.errors import CyLogTypeError


class TestArithmetic:
    def test_numeric_ops(self):
        assert apply_arith("+", 2, 3) == 5
        assert apply_arith("-", 2, 3) == -1
        assert apply_arith("*", 2.5, 4) == 10.0
        assert apply_arith("/", 7, 2) == 3.5

    def test_string_concat(self):
        assert apply_arith("+", "ab", "cd") == "abcd"

    def test_string_minus_rejected(self):
        with pytest.raises(CyLogTypeError):
            apply_arith("-", "ab", "cd")

    def test_bool_is_not_a_number(self):
        with pytest.raises(CyLogTypeError):
            apply_arith("+", True, 1)

    def test_division_by_zero(self):
        with pytest.raises(CyLogTypeError, match="zero"):
            apply_arith("/", 1, 0)

    def test_eval_expr_nested(self):
        expr = BinArith("+", Var("X"), BinArith("*", Const(2), Var("Y")))
        assert eval_expr(expr, {"X": 1, "Y": 10}) == 21

    def test_eval_expr_unbound(self):
        with pytest.raises(CyLogTypeError, match="unbound"):
            eval_expr(Var("Z"), {})


class TestComparisons:
    def test_equality_cross_type_false(self):
        assert apply_comparison("==", 1, "1") is False
        assert apply_comparison("!=", 1, "1") is True

    def test_bool_not_equal_to_int(self):
        assert apply_comparison("==", True, 1) is False
        assert apply_comparison("==", False, 0) is False

    def test_numeric_ordering(self):
        assert apply_comparison("<", 1, 2)
        assert apply_comparison(">=", 2.0, 2)

    def test_string_ordering(self):
        assert apply_comparison("<", "abc", "abd")

    def test_cross_family_ordering_is_false(self):
        assert apply_comparison("<", 1, "abc") is False
        assert apply_comparison(">", "abc", 1) is False

    def test_int_float_equal(self):
        assert apply_comparison("==", 2, 2.0) is True
