"""RuntimeConfig: validation, equivalence with the deprecated keywords,
and the deprecation shims themselves."""

from __future__ import annotations

import pytest

from repro.config import RuntimeConfig
from repro.core import Crowd4U, HumanFactors
from repro.cylog import CyLogProcessor, ShardConfig


class TestValidation:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.backend == "memory"
        assert config.to_shard_config() == ShardConfig()

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RuntimeConfig(backend="etcd", path="/tmp/x")

    def test_durable_backend_requires_path(self):
        with pytest.raises(ValueError, match="requires a path"):
            RuntimeConfig(backend="wal")

    def test_memory_backend_rejects_path(self):
        with pytest.raises(ValueError, match="takes no path"):
            RuntimeConfig(path="/tmp/x")

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            RuntimeConfig(executor="gpu")

    def test_bad_shards_and_budget(self):
        with pytest.raises(ValueError, match="shards"):
            RuntimeConfig(shards=0)
        with pytest.raises(ValueError, match="support_budget"):
            RuntimeConfig(support_budget=-1)

    def test_with_changes(self):
        config = RuntimeConfig().with_changes(shards=4, executor="thread")
        assert config.shards == 4
        assert config.to_shard_config().executor == "thread"

    def test_build_database_durable(self, tmp_path):
        config = RuntimeConfig(backend="wal", path=tmp_path / "d")
        db = config.build_database()
        assert db.backend.name == "wal"
        db.close()

    def test_backend_options_forwarded(self, tmp_path):
        config = RuntimeConfig(
            backend="wal", path=tmp_path / "d", backend_options={"compact_every": 3}
        )
        db = config.build_database()
        assert db.backend.compact_every == 3
        db.close()


class TestCrowd4UShim:
    def _factors(self):
        return HumanFactors(
            native_languages=frozenset({"en"}),
            languages={"fr": 0.8},
            skills={"translation": 0.7},
            reliability=0.9,
        )

    def test_config_path_is_warning_free(self, recwarn):
        platform = Crowd4U(seed=1, config=RuntimeConfig(shards=2))
        assert platform.shard_config.shards == 2
        assert not [w for w in recwarn if w.category is DeprecationWarning]
        platform.close()

    def test_deprecated_kwargs_still_work(self):
        with pytest.deprecated_call():
            platform = Crowd4U(seed=1, shards=2, executor="thread", max_workers=2)
        assert platform.shard_config.shards == 2
        assert platform.shard_config.executor == "thread"
        platform.close()

    def test_deprecated_exchange_kwarg(self):
        with pytest.deprecated_call():
            platform = Crowd4U(seed=1, exchange=False)
        assert platform.shard_config.exchange is False
        platform.close()

    def test_mixing_config_and_deprecated_kwargs_raises(self):
        with pytest.raises(ValueError, match="deprecated keywords"):
            Crowd4U(seed=1, shards=2, config=RuntimeConfig())

    def test_deprecated_and_config_paths_equivalent(self):
        with pytest.deprecated_call():
            old = Crowd4U(seed=5, shards=2, executor="thread", max_workers=2)
        new = Crowd4U(
            seed=5, config=RuntimeConfig(shards=2, executor="thread", max_workers=2)
        )
        for platform in (old, new):
            platform.register_worker("ann", self._factors())
            platform.register_project(
                name="p",
                requester="r",
                cylog_source="""
                    open translate(seg: text, out: text) key (seg) asking "t {seg}".
                    segment("s1").
                    eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
                    translated(S, T) :- segment(S), translate(S, T).
                """,
            )
            platform.step()
        old_snapshot = old.snapshot()
        assert old_snapshot == new.snapshot()
        assert old.shard_config == new.shard_config
        old.close()
        new.close()

    def test_durable_config_platform_restores(self, tmp_path):
        from repro.storage import dump_canonical

        config = RuntimeConfig(backend="sqlite", path=tmp_path / "d.sqlite")
        platform = Crowd4U(seed=2, config=config)
        platform.register_worker("ann", self._factors())
        state = dump_canonical(platform.db)
        platform.close()
        reopened = config.build_database()
        assert dump_canonical(reopened) == state
        reopened.close()


class TestProcessorShim:
    def test_config_plumbs_support_budget(self):
        processor = CyLogProcessor(
            "p(1). q(X) :- p(X).", config=RuntimeConfig(support_budget=7)
        )
        assert processor.engine._support_budget == 7
        processor.close()

    def test_shard_config_deprecated(self):
        with pytest.deprecated_call():
            processor = CyLogProcessor("p(1).", shard_config=ShardConfig(shards=2))
        assert processor.engine.shard_config.shards == 2
        processor.close()

    def test_mixing_raises(self):
        with pytest.raises(ValueError, match="not both"):
            CyLogProcessor(
                "p(1).", shard_config=ShardConfig(), config=RuntimeConfig()
            )
