"""RuntimeConfig: validation, the nested serving slice, and the removal
of the PR-6 deprecated keyword shims (config= is the only spelling)."""

from __future__ import annotations

import pytest

from repro.config import RuntimeConfig
from repro.core import Crowd4U, HumanFactors
from repro.cylog import CyLogProcessor, ShardConfig
from repro.serving import ServingConfig


class TestValidation:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.backend == "memory"
        assert config.to_shard_config() == ShardConfig()

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RuntimeConfig(backend="etcd", path="/tmp/x")

    def test_durable_backend_requires_path(self):
        with pytest.raises(ValueError, match="requires a path"):
            RuntimeConfig(backend="wal")

    def test_memory_backend_rejects_path(self):
        with pytest.raises(ValueError, match="takes no path"):
            RuntimeConfig(path="/tmp/x")

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            RuntimeConfig(executor="gpu")

    def test_bad_shards_and_budget(self):
        with pytest.raises(ValueError, match="shards"):
            RuntimeConfig(shards=0)
        with pytest.raises(ValueError, match="support_budget"):
            RuntimeConfig(support_budget=-1)

    def test_with_changes(self):
        config = RuntimeConfig().with_changes(shards=4, executor="thread")
        assert config.shards == 4
        assert config.to_shard_config().executor == "thread"

    def test_build_database_durable(self, tmp_path):
        config = RuntimeConfig(backend="wal", path=tmp_path / "d")
        db = config.build_database()
        assert db.backend.name == "wal"
        db.close()

    def test_backend_options_forwarded(self, tmp_path):
        config = RuntimeConfig(
            backend="wal", path=tmp_path / "d", backend_options={"compact_every": 3}
        )
        db = config.build_database()
        assert db.backend.compact_every == 3
        db.close()


class TestCrowd4UShim:
    def _factors(self):
        return HumanFactors(
            native_languages=frozenset({"en"}),
            languages={"fr": 0.8},
            skills={"translation": 0.7},
            reliability=0.9,
        )

    def test_config_path_is_warning_free(self, recwarn):
        platform = Crowd4U(seed=1, config=RuntimeConfig(shards=2))
        assert platform.shard_config.shards == 2
        assert not [w for w in recwarn if w.category is DeprecationWarning]
        platform.close()

    def test_legacy_kwargs_removed(self):
        # The PR-6 deprecation shims graduated to removal: the old
        # per-knob keywords are hard TypeErrors now, not warnings.
        for kwargs in (
            {"shards": 2},
            {"executor": "thread"},
            {"max_workers": 2},
            {"exchange": False},
        ):
            with pytest.raises(TypeError):
                Crowd4U(seed=1, **kwargs)

    def test_config_paths_equivalent_across_layouts(self):
        old = Crowd4U(seed=5, config=RuntimeConfig())
        new = Crowd4U(
            seed=5, config=RuntimeConfig(shards=2, executor="thread", max_workers=2)
        )
        for platform in (old, new):
            platform.register_worker("ann", self._factors())
            platform.register_project(
                name="p",
                requester="r",
                cylog_source="""
                    open translate(seg: text, out: text) key (seg) asking "t {seg}".
                    segment("s1").
                    eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
                    translated(S, T) :- segment(S), translate(S, T).
                """,
            )
            platform.step()
        old_snapshot = old.snapshot()
        new_snapshot = new.snapshot()
        # Execution layout may differ; the platform state must not.
        for snapshot in (old_snapshot, new_snapshot):
            snapshot.pop("engine_shards", None)
        assert old_snapshot == new_snapshot
        old.close()
        new.close()

    def test_durable_config_platform_restores(self, tmp_path):
        from repro.storage import dump_canonical

        config = RuntimeConfig(backend="sqlite", path=tmp_path / "d.sqlite")
        platform = Crowd4U(seed=2, config=config)
        platform.register_worker("ann", self._factors())
        state = dump_canonical(platform.db)
        platform.close()
        reopened = config.build_database()
        assert dump_canonical(reopened) == state
        reopened.close()


class TestProcessorShim:
    def test_config_plumbs_support_budget(self):
        processor = CyLogProcessor(
            "p(1). q(X) :- p(X).", config=RuntimeConfig(support_budget=7)
        )
        assert processor.engine._support_budget == 7
        processor.close()

    def test_shard_config_kwarg_removed(self):
        with pytest.raises(TypeError):
            CyLogProcessor("p(1).", shard_config=ShardConfig(shards=2))

    def test_config_plumbs_shards(self):
        processor = CyLogProcessor("p(1).", config=RuntimeConfig(shards=2))
        assert processor.engine.shard_config.shards == 2
        processor.close()


class TestServingSlice:
    def test_default_serving_config(self):
        config = RuntimeConfig()
        assert config.serving == ServingConfig()
        assert config.serving.port == 0

    def test_serving_composes(self):
        config = RuntimeConfig(serving=ServingConfig(queue_depth=7, max_batch=3))
        assert config.serving.queue_depth == 7
        assert config.serving.max_batch == 3

    def test_serving_type_checked(self):
        with pytest.raises(TypeError, match="serving"):
            RuntimeConfig(serving={"port": 80})

    def test_with_changes_preserves_serving(self):
        config = RuntimeConfig(serving=ServingConfig(queue_depth=7))
        assert config.with_changes(shards=2).serving.queue_depth == 7

    def test_build_server_uses_serving_slice(self):
        config = RuntimeConfig(serving=ServingConfig(max_batch=3))
        server = config.build_server()
        try:
            assert server.config.max_batch == 3
            assert server.platform.config is config
        finally:
            server.platform.close()

    def test_build_server_accepts_existing_platform(self):
        platform = Crowd4U(seed=1)
        try:
            server = RuntimeConfig().build_server(platform)
            assert server.platform is platform
        finally:
            platform.close()
