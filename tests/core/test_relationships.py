"""The Eligible/InterestedIn/Undertakes ledger and its invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.relationships import RelationshipLedger, RelationshipStatus
from repro.errors import RelationshipError
from repro.storage import Database


@pytest.fixture
def ledger(db):
    return RelationshipLedger(db)


class TestPaperInvariant:
    """'A (worker,task) pair can go into [Undertakes] only when the worker
    is Eligible for that task.'"""

    def test_undertake_requires_eligibility(self, ledger):
        with pytest.raises(RelationshipError, match="not eligible"):
            ledger.undertake("w", "t")

    def test_undertake_after_eligible(self, ledger):
        ledger.mark_eligible("w", "t")
        ledger.undertake("w", "t")
        assert ledger.status("w", "t") is RelationshipStatus.UNDERTAKES

    def test_undertake_after_interest(self, ledger):
        ledger.mark_eligible("w", "t")
        ledger.declare_interest("w", "t")
        ledger.undertake("w", "t")
        assert ledger.status("w", "t") is RelationshipStatus.UNDERTAKES

    def test_undertake_from_declined_rejected(self, ledger):
        ledger.mark_eligible("w", "t")
        ledger.decline("w", "t")
        with pytest.raises(RelationshipError):
            ledger.undertake("w", "t")

    def test_interest_requires_eligibility(self, ledger):
        with pytest.raises(RelationshipError, match="not eligible"):
            ledger.declare_interest("w", "t")


class TestTransitions:
    def test_eligible_idempotent(self, ledger):
        ledger.mark_eligible("w", "t")
        ledger.mark_eligible("w", "t")
        assert ledger.status("w", "t") is RelationshipStatus.ELIGIBLE

    def test_mark_eligible_does_not_demote(self, ledger):
        ledger.mark_eligible("w", "t")
        ledger.declare_interest("w", "t")
        ledger.mark_eligible("w", "t")  # no-op
        assert ledger.status("w", "t") is RelationshipStatus.INTERESTED

    def test_declined_can_reconsider(self, ledger):
        ledger.mark_eligible("w", "t")
        ledger.decline("w", "t")
        ledger.declare_interest("w", "t")
        assert ledger.status("w", "t") is RelationshipStatus.INTERESTED

    def test_undertakes_can_revert_to_interested(self, ledger):
        # team dissolution path (§2.2.1 re-execution)
        ledger.mark_eligible("w", "t")
        ledger.undertake("w", "t")
        ledger.declare_interest("w", "t")
        assert ledger.status("w", "t") is RelationshipStatus.INTERESTED

    def test_complete_requires_undertakes(self, ledger):
        ledger.mark_eligible("w", "t")
        with pytest.raises(RelationshipError):
            ledger.complete("w", "t")

    def test_completed_is_terminal(self, ledger):
        ledger.mark_eligible("w", "t")
        ledger.undertake("w", "t")
        ledger.complete("w", "t")
        with pytest.raises(RelationshipError):
            ledger.decline("w", "t")


class TestQueries:
    def test_workers_by_status(self, ledger):
        for worker in ("a", "b", "c"):
            ledger.mark_eligible(worker, "t1")
        ledger.declare_interest("a", "t1")
        assert ledger.interested_workers("t1") == ["a"]
        assert ledger.workers_with_status("t1", RelationshipStatus.ELIGIBLE) == [
            "b", "c",
        ]

    def test_eligible_workers_includes_rooted_states(self, ledger):
        ledger.mark_eligible("a", "t")
        ledger.mark_eligible("b", "t")
        ledger.declare_interest("b", "t")
        ledger.mark_eligible("c", "t")
        ledger.undertake("c", "t")
        assert ledger.eligible_workers("t") == ["a", "b", "c"]

    def test_tasks_for_worker(self, ledger):
        ledger.mark_eligible("w", "t1")
        ledger.mark_eligible("w", "t2")
        ledger.declare_interest("w", "t2")
        assert ledger.tasks_with_status("w", RelationshipStatus.INTERESTED) == ["t2"]

    def test_counts_for_task(self, ledger):
        ledger.mark_eligible("a", "t")
        ledger.mark_eligible("b", "t")
        ledger.declare_interest("a", "t")
        counts = ledger.counts_for_task("t")
        assert counts["eligible"] == 1 and counts["interested"] == 1

    def test_persistence_across_instances(self, db):
        first = RelationshipLedger(db)
        first.mark_eligible("w", "t")
        first.declare_interest("w", "t")
        second = RelationshipLedger(db)
        assert second.status("w", "t") is RelationshipStatus.INTERESTED


# -- property: arbitrary action sequences never break the paper invariant ----

actions = st.lists(
    st.tuples(
        st.sampled_from(["eligible", "interest", "undertake", "decline",
                         "complete"]),
        st.sampled_from(["w1", "w2"]),
        st.sampled_from(["t1", "t2"]),
    ),
    max_size=40,
)


@given(actions)
@settings(max_examples=60, deadline=None)
def test_ledger_never_reaches_undertakes_without_eligibility(sequence):
    """Fuzz the ledger: Undertakes is only reachable through Eligible."""
    ledger = RelationshipLedger(Database())
    ever_eligible: set[tuple[str, str]] = set()
    for action, worker, task in sequence:
        try:
            if action == "eligible":
                ledger.mark_eligible(worker, task)
                ever_eligible.add((worker, task))
            elif action == "interest":
                ledger.declare_interest(worker, task)
            elif action == "undertake":
                ledger.undertake(worker, task)
            elif action == "decline":
                ledger.decline(worker, task)
            else:
                ledger.complete(worker, task)
        except RelationshipError:
            continue
        if ledger.status(worker, task) is RelationshipStatus.UNDERTAKES:
            assert (worker, task) in ever_eligible
