"""Human factors: validation, queries, fact-row export."""

import pytest

from repro.core.human_factors import HumanFactors
from repro.errors import PlatformError


class TestValidation:
    def test_native_languages_get_full_proficiency(self):
        factors = HumanFactors(native_languages=frozenset({"ja"}),
                               languages={"en": 0.4})
        assert factors.languages["ja"] == 1.0
        assert factors.languages["en"] == 0.4

    def test_proficiency_out_of_range(self):
        with pytest.raises(PlatformError):
            HumanFactors(languages={"en": 1.5})

    def test_skill_out_of_range(self):
        with pytest.raises(PlatformError):
            HumanFactors(skills={"x": -0.1})

    def test_reliability_out_of_range(self):
        with pytest.raises(PlatformError):
            HumanFactors(reliability=2.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(PlatformError):
            HumanFactors(cost=-1)


class TestQueries:
    def test_speaks_threshold(self):
        factors = HumanFactors(languages={"fr": 0.5})
        assert factors.speaks("fr", 0.5)
        assert not factors.speaks("fr", 0.6)
        assert not factors.speaks("de")

    def test_zero_proficiency_is_not_speaking(self):
        factors = HumanFactors(languages={"fr": 0.0})
        assert not factors.speaks("fr")

    def test_is_native(self):
        factors = HumanFactors(native_languages=frozenset({"ja"}))
        assert factors.is_native("ja") and not factors.is_native("en")

    def test_skill_level_default_zero(self):
        assert HumanFactors().skill_level("anything") == 0.0

    def test_mean_skill(self):
        factors = HumanFactors(skills={"a": 0.4, "b": 0.8})
        assert factors.mean_skill(("a", "b")) == pytest.approx(0.6)
        assert factors.mean_skill(("a", "missing")) == pytest.approx(0.2)
        assert factors.mean_skill(()) == 0.0


class TestEvolution:
    def test_with_skill_returns_new_object(self):
        before = HumanFactors(skills={"x": 0.2})
        after = before.with_skill("x", 0.9)
        assert before.skill_level("x") == 0.2
        assert after.skill_level("x") == 0.9

    def test_with_reliability(self):
        assert HumanFactors().with_reliability(0.4).reliability == 0.4

    def test_with_sns_id(self):
        assert HumanFactors().with_sns_id("me@x").sns_id == "me@x"


class TestFactRows:
    def test_fact_rows_cover_all_factors(self):
        factors = HumanFactors(
            native_languages=frozenset({"en"}),
            languages={"fr": 0.5},
            region="paris",
            skills={"translation": 0.7},
            reliability=0.9,
            extras={"team_player": True},
        )
        rows = factors.as_fact_rows("w1")
        assert rows["worker"] == [("w1",)]
        assert ("w1", "en") in rows["worker_native"]
        assert ("w1", "fr", 0.5) in rows["worker_language"]
        assert ("w1", "en", 1.0) in rows["worker_language"]
        assert rows["worker_region"] == [("w1", "paris")]
        assert rows["worker_skill"] == [("w1", "translation", 0.7)]
        assert rows["worker_extra"] == [("w1", "team_player", "True")]

    def test_fact_rows_deterministic_order(self):
        factors = HumanFactors(languages={"b": 0.1, "a": 0.2})
        rows = factors.as_fact_rows("w")
        langs = [r[1] for r in rows["worker_language"]]
        assert langs == sorted(langs)
