"""The incremental platform round: dirty tracking, revocation, staleness.

The differential staleness tests are the satellite requirement: a worker
whose human factors change mid-run must appear in / disappear from
``eligible_tasks`` on the next ``step()`` under *both* the incremental and
the full-recompute paths.
"""

from __future__ import annotations

import pytest

from repro.core import Crowd4U, HumanFactors, TeamConstraints
from repro.core.relationships import RelationshipStatus
from repro.errors import PlatformError

#: A constraint-screen project: no ``eligible`` rule, so per-worker
#: eligibility follows TeamConstraints.member_eligible (languages/region).
SCREEN_SOURCE = """
    open caption(img: text, out: text) key (img) asking "Caption {img}".
    image("i1"). image("i2").
    captioned(I, C) :- image(I), caption(I, C).
"""

#: A CyLog-eligibility project: the rule derives Eligible from facts.
CYLOG_SOURCE = """
    open translate(seg: text, out: text) key (seg) asking "Translate {seg}".
    segment("s1").
    eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
    translated(S, T) :- segment(S), translate(S, T).
"""

FR = HumanFactors(languages={"fr": 0.9}, region="paris", skills={"translation": 0.8})
NO_FR = HumanFactors(languages={"fr": 0.1}, region="paris", skills={"translation": 0.8})


def _screen_platform(incremental: bool) -> tuple[Crowd4U, str]:
    platform = Crowd4U(seed=5, incremental=incremental)
    fluent = platform.register_worker("fluent", FR)
    platform.register_worker("silent", NO_FR)
    platform.register_project(
        "captions", "req", SCREEN_SOURCE,
        constraints=TeamConstraints(
            min_size=2, required_languages=frozenset({"fr"}),
            language_proficiency=0.5,
        ),
    )
    platform.step()
    return platform, fluent.id


class TestEligibilityStaleness:
    @pytest.mark.parametrize("incremental", (True, False), ids=("incremental", "full"))
    def test_factors_change_disappears_next_step(self, incremental):
        """Losing the screened factor removes the worker's pending tasks on
        the next round — identically on both paths."""
        platform, fluent = _screen_platform(incremental)
        assert len(platform.eligible_tasks(fluent)) == 2
        platform.update_worker_factors(fluent, NO_FR)
        # Stale until the next platform round...
        platform.step(cross_check=incremental)
        assert platform.eligible_tasks(fluent) == []
        assert platform.stats.eligibility_revoked >= 2

    @pytest.mark.parametrize("incremental", (True, False), ids=("incremental", "full"))
    def test_factors_change_appears_next_step(self, incremental):
        platform, _ = _screen_platform(incremental)
        silent = platform.workers.ids()[1]
        assert platform.eligible_tasks(silent) == []
        platform.update_worker_factors(silent, FR)
        platform.step(cross_check=incremental)
        assert len(platform.eligible_tasks(silent)) == 2

    def test_incremental_and_full_agree_on_staleness(self):
        """Differential form: drive the same mid-run factor flip through
        both paths and compare the resulting eligible sets."""
        outcomes = {}
        for incremental in (True, False):
            platform, fluent = _screen_platform(incremental)
            platform.update_worker_factors(fluent, NO_FR)
            silent = platform.workers.ids()[1]
            platform.update_worker_factors(silent, FR)
            platform.step(cross_check=incremental)
            outcomes[incremental] = {
                worker: sorted(t.id for t in platform.eligible_tasks(worker))
                for worker in platform.workers.ids()
            }
        assert outcomes[True] == outcomes[False]

    def test_interest_survives_factor_loss(self):
        """Revocation only retracts system-derived *Eligible* rows; a
        worker-declared interest is never silently dropped."""
        platform, fluent = _screen_platform(True)
        task = platform.eligible_tasks(fluent)[0]
        platform.declare_interest(fluent, task.id)
        platform.update_worker_factors(fluent, NO_FR)
        platform.step()
        assert (
            platform.ledger.status(fluent, task.id) is RelationshipStatus.INTERESTED
        )

    def test_nonmonotone_rule_with_constant_cardinality(self):
        """Regression: with negation the eligible relation can swap members
        at constant size (one batch bans the only eligible worker while
        qualifying another).  The engine-reported deltas must carry both
        the revocation and the new eligibility through the round."""
        source = """
            open translate(seg: text, out: text) key (seg) asking "T {seg}".
            segment("s1").
            banned(W) :- flag(W, F), F >= 1.
            eligible(W) :- worker_language(W, "fr", P), P >= 0.5, not banned(W).
            translated(S, T) :- segment(S), translate(S, T).
        """
        platform = Crowd4U(seed=5, incremental=True)
        alice = platform.register_worker("alice", FR)
        bob = platform.register_worker("bob", NO_FR)
        project = platform.register_project("subs", "req", source)
        platform.step(cross_check=True)
        assert [t.id for t in platform.eligible_tasks(alice.id)]
        assert platform.eligible_tasks(bob.id) == []
        # Same-size swap: alice becomes banned, bob becomes fluent.
        platform.processor(project.id).add_facts("flag", [(alice.id, 1)])
        platform.update_worker_factors(bob.id, FR)
        platform.step(cross_check=True)
        assert platform.eligible_tasks(alice.id) == []
        assert [t.id for t in platform.eligible_tasks(bob.id)]

    def test_cylog_path_additive_facts_keep_eligibility(self):
        """On the CyLog path fact stores are additive, so a factor edit can
        only extend eligibility — the derived Eligible set never shrinks."""
        platform = Crowd4U(seed=5)
        worker = platform.register_worker("w", FR)
        platform.register_project("subs", "req", CYLOG_SOURCE)
        platform.step()
        assert len(platform.eligible_tasks(worker.id)) == 1
        platform.update_worker_factors(worker.id, NO_FR)
        platform.step(cross_check=True)
        assert len(platform.eligible_tasks(worker.id)) == 1


class TestIncrementalBookkeeping:
    def test_quiet_rounds_skip_everything(self):
        platform, _ = _screen_platform(True)
        platform.step()
        before = platform.stats.as_dict()
        platform.step()
        after = platform.stats.as_dict()
        assert after["eligibility_tasks_skipped"] == before["eligibility_tasks_skipped"] + 2
        assert after["eligibility_pairs_checked"] == before["eligibility_pairs_checked"]
        assert after["assignments_skipped"] == before["assignments_skipped"] + 2

    def test_full_escape_hatch_recomputes(self):
        platform, _ = _screen_platform(True)
        before = platform.stats.eligibility_tasks_full
        platform.step(full=True)
        assert platform.stats.eligibility_tasks_full == before + 2

    def test_constraint_update_forces_full_rederivation(self):
        platform, fluent = _screen_platform(True)
        platform.update_constraints(
            platform.projects.active()[0].id,
            TeamConstraints(min_size=2, required_languages=frozenset({"de"})),
        )
        platform.step(cross_check=True)
        assert platform.eligible_tasks(fluent) == []

    def test_result_recording_rearms_pending_tasks(self):
        """Recording a team result reinforces the affinity matrix — an
        input to team scoring — so every pending root task must be
        re-attempted on the next incremental round."""
        from repro.core import TeamConstraints
        from repro.core.tasks import TaskStatus

        platform = Crowd4U(seed=9)
        worker = platform.register_worker("solo", FR)
        source = CYLOG_SOURCE.replace('segment("s1").', 'segment("s1"). segment("s2").')
        platform.register_project(
            "subs", "req", source,
            constraints=TeamConstraints(min_size=1, critical_mass=1),
        )
        platform.step()
        first, second = platform.eligible_tasks(worker.id)
        platform.declare_interest(worker.id, first.id)
        platform.step()  # team proposed for first; second attempted, waiting
        platform.confirm_membership(worker.id, first.id)
        platform.step()
        skipped_before = platform.stats.assignments_skipped
        platform.step()  # nothing changed: second is skipped
        assert platform.stats.assignments_skipped == skipped_before + 1
        for task in platform.tasks_for_worker(worker.id):
            platform.submit_micro_result(
                task.id, worker.id, {"text": "fr", "quality": 0.9}
            )
        assert platform.pool.get(first.id).status is TaskStatus.COMPLETED
        attempts_before = platform.stats.assignment_attempts
        platform.step(cross_check=True)  # re-armed by the recorded result
        assert platform.stats.assignment_attempts == attempts_before + 1

    def test_cross_check_detects_tampering(self):
        """The oracle actually fires: corrupt the ledger behind the
        incremental bookkeeping's back and cross_check must raise."""
        platform, fluent = _screen_platform(True)
        task = platform.eligible_tasks(fluent)[0]
        platform.ledger.revoke_eligibility(fluent, task.id)
        with pytest.raises(PlatformError, match="diverged"):
            platform.step(cross_check=True)

    def test_collect_stats_feeds_collector(self):
        from repro.metrics import Collector

        platform, _ = _screen_platform(True)
        platform.eligible_tasks(platform.workers.ids()[0])
        collector = Collector()
        platform.collect_stats(collector)
        summary = collector.summary()
        assert summary["platform.rounds"] >= 1
        assert any(key.startswith("query_cache.") for key in summary)
