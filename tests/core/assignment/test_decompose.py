"""Task decomposition and sub-group assignment."""

import pytest

from repro.core.assignment import (
    AssignmentProblem,
    GridDecomposer,
    SegmentDecomposer,
    TopicDecomposer,
    assign_subgroups,
)
from repro.core.constraints import TeamConstraints
from repro.errors import AssignmentError


class TestDecomposers:
    def test_segment_decomposer_splits_words(self):
        specs = SegmentDecomposer(segment_words=3).decompose(
            {"text": "one two three four five six seven"}
        )
        assert [s.payload["text"] for s in specs] == [
            "one two three", "four five six", "seven",
        ]
        assert [s.key for s in specs] == ["seg000", "seg001", "seg002"]

    def test_segment_decomposer_empty_text(self):
        assert SegmentDecomposer().decompose({"text": "  "}) == []

    def test_segment_words_positive(self):
        with pytest.raises(AssignmentError):
            SegmentDecomposer(segment_words=0)

    def test_topic_decomposer(self):
        specs = TopicDecomposer().decompose({"topics": ["a", "b"]})
        assert len(specs) == 2
        assert specs[1].payload == {"topic": "b", "position": 1}

    def test_grid_decomposer_cross_product(self):
        specs = GridDecomposer().decompose(
            {"regions": ["r1", "r2"], "periods": ["p1", "p2", "p3"]}
        )
        assert len(specs) == 6
        assert specs[0].payload == {"region": "r1", "period": "p1"}


class TestSubGroupAssignment:
    def _problem(self, workers, affinity):
        return AssignmentProblem(
            workers=tuple(workers),
            affinity=affinity,
            constraints=TeamConstraints(min_size=2, critical_mass=2),
        )

    def test_groups_are_disjoint(self, five_workers, uniform_affinity):
        problem = self._problem(five_workers, uniform_affinity)
        result = assign_subgroups(problem, n_subtasks=2, group_size=2)
        members = [m for group in result.groups for m in group]
        assert len(members) == len(set(members))

    def test_affinity_dense_groups_first(self, five_workers, uniform_affinity):
        problem = self._problem(five_workers, uniform_affinity)
        result = assign_subgroups(problem, n_subtasks=2, group_size=2)
        # the two same-region pairs should be found
        assert {frozenset(g) for g in result.groups if g} == {
            frozenset({"w1", "w2"}), frozenset({"w3", "w4"}),
        }
        assert result.leftover == ("w5",)

    def test_liaisons_are_members(self, five_workers, uniform_affinity):
        problem = self._problem(five_workers, uniform_affinity)
        result = assign_subgroups(problem, n_subtasks=2, group_size=2)
        for group, liaison in zip(result.groups, result.liaisons):
            if group:
                assert liaison in group

    def test_more_subtasks_than_workers(self, five_workers, uniform_affinity):
        problem = self._problem(five_workers, uniform_affinity)
        result = assign_subgroups(problem, n_subtasks=4, group_size=2)
        non_empty = [g for g in result.groups if g]
        assert len(non_empty) >= 2  # at least the two dense pairs

    def test_zero_subtasks_rejected(self, five_workers, uniform_affinity):
        problem = self._problem(five_workers, uniform_affinity)
        with pytest.raises(AssignmentError):
            assign_subgroups(problem, n_subtasks=0)

    def test_total_affinity_accumulates(self, five_workers, uniform_affinity):
        problem = self._problem(five_workers, uniform_affinity)
        result = assign_subgroups(problem, n_subtasks=2, group_size=2)
        assert result.total_affinity == pytest.approx(1.8)  # 0.9 + 0.9
