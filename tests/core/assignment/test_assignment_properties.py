"""Property-based assignment invariants (hypothesis)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.affinity import AffinityMatrix
from repro.core.assignment import (
    AssignmentProblem,
    ExactAssigner,
    GraspAssigner,
    GreedyAssigner,
    LocalSearchAssigner,
    RandomAssigner,
    SkillOnlyAssigner,
)
from repro.core.constraints import SkillRequirement, TeamConstraints
from tests.conftest import make_worker


@st.composite
def random_problem(draw) -> AssignmentProblem:
    n = draw(st.integers(min_value=2, max_value=9))
    regions = ["tsukuba", "paris"]
    workers = tuple(
        make_worker(
            f"w{i}",
            skill=draw(st.floats(min_value=0.0, max_value=1.0)),
            region=draw(st.sampled_from(regions)),
            cost=draw(st.floats(min_value=0.0, max_value=2.0)),
            reliability=draw(st.floats(min_value=0.5, max_value=1.0)),
        )
        for i in range(n)
    )
    affinity = AffinityMatrix()
    for i in range(n):
        for j in range(i + 1, n):
            affinity.set(
                workers[i].id, workers[j].id,
                draw(st.floats(min_value=0.0, max_value=1.0)),
            )
    min_size = draw(st.integers(min_value=1, max_value=min(3, n)))
    constraints = TeamConstraints(
        min_size=min_size,
        critical_mass=draw(st.integers(min_value=min_size,
                                       max_value=min(5, n))),
        skills=(SkillRequirement(
            "translation",
            draw(st.floats(min_value=0.0, max_value=0.8)),
        ),),
        quality_threshold=draw(st.floats(min_value=0.0, max_value=0.5)),
        cost_budget=draw(st.floats(min_value=0.5, max_value=10.0)),
    )
    return AssignmentProblem(
        workers=workers, affinity=affinity, constraints=constraints
    )


_APPROXIMATE = [
    GreedyAssigner(),
    LocalSearchAssigner(),
    GraspAssigner(seed=1, iterations=6),
    RandomAssigner(seed=1),
    SkillOnlyAssigner(),
]


@given(random_problem())
@settings(max_examples=50, deadline=None)
def test_feasible_results_satisfy_all_constraints(problem):
    """Whatever any assigner returns as feasible *is* feasible."""
    for assigner in _APPROXIMATE + [ExactAssigner()]:
        result = assigner.assign(problem)
        if result.feasible:
            team = [problem.worker_by_id(wid) for wid in result.team]
            assert problem.constraints.is_satisfied_by(team), assigner.name
            assert result.affinity_score == \
                problem.affinity.intra_affinity(result.team)


@given(random_problem())
@settings(max_examples=40, deadline=None)
def test_exact_dominates_approximations(problem):
    """No approximation can beat the exact optimum; and whenever an
    approximation finds a team, so does exact."""
    exact = ExactAssigner().assign(problem)
    for assigner in _APPROXIMATE:
        result = assigner.assign(problem)
        if result.feasible:
            assert exact.feasible, assigner.name
            assert result.affinity_score <= exact.affinity_score + 1e-9, (
                assigner.name
            )


@given(random_problem())
@settings(max_examples=40, deadline=None)
def test_local_search_at_least_greedy(problem):
    greedy = GreedyAssigner().assign(problem)
    local = LocalSearchAssigner().assign(problem)
    if greedy.feasible:
        assert local.feasible
        assert local.affinity_score >= greedy.affinity_score - 1e-9


@given(random_problem())
@settings(max_examples=30, deadline=None)
def test_assigners_deterministic(problem):
    """Same problem, same seed → identical output (reproducibility)."""
    for assigner_factory in (
        lambda: GreedyAssigner(),
        lambda: GraspAssigner(seed=9, iterations=4),
        lambda: RandomAssigner(seed=9),
    ):
        first = assigner_factory().assign(problem)
        second = assigner_factory().assign(problem)
        assert first.team == second.team
        assert first.affinity_score == second.affinity_score
