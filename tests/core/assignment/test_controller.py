"""The task assignment controller: the §2.2.1 workflow."""

import pytest

from repro.core.affinity import AffinityMatrix
from repro.core.assignment import TaskAssignmentController, default_registry
from repro.core.constraints import SkillRequirement, TeamConstraints
from repro.core.events import EventBus
from repro.core.human_factors import HumanFactors
from repro.core.relationships import RelationshipLedger, RelationshipStatus
from repro.core.tasks import TaskKind, TaskPool, TaskStatus
from repro.core.teams import TeamRegistry, TeamStatus
from repro.core.workers import WorkerManager


@pytest.fixture
def rig(db):
    """A controller wired to fresh components plus six workers."""
    workers = WorkerManager(db)
    for i, region in enumerate(
        ["tsukuba", "tsukuba", "tsukuba", "paris", "paris", "dallas"]
    ):
        workers.register(
            f"worker{i}",
            HumanFactors(
                native_languages=frozenset({"en"}),
                region=region,
                skills={"translation": 0.9 - i * 0.1},
                reliability=0.95,
            ),
        )
    affinity = AffinityMatrix()
    ids = workers.ids()
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            same = workers.get(a).factors.region == workers.get(b).factors.region
            affinity.set(a, b, 0.8 if same else 0.1)
    pool = TaskPool(db)
    teams = TeamRegistry(db)
    events = EventBus()
    ledger = RelationshipLedger(db)
    controller = TaskAssignmentController(
        workers=workers, ledger=ledger, affinity=affinity, pool=pool,
        teams=teams, events=events, registry=default_registry(0),
    )
    task = pool.create("p1", TaskKind.OPEN_FILL, "translate stuff")
    return controller, task


CONSTRAINTS = TeamConstraints(
    min_size=2, critical_mass=3,
    skills=(SkillRequirement("translation", 0.5),),
    confirmation_window=10.0,
)


def _interest(controller, task, worker_ids):
    for worker_id in worker_ids:
        controller.ledger.mark_eligible(worker_id, task.id)
        controller.ledger.declare_interest(worker_id, task.id)


class TestWorkflow:
    def test_waits_for_sufficient_interest(self, rig):
        controller, task = rig
        _interest(controller, task, ["w00000"])
        outcome = controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        assert outcome.waiting and not outcome.proposed

    def test_proposes_team_from_interested(self, rig):
        controller, task = rig
        _interest(controller, task, ["w00000", "w00001", "w00002", "w00003"])
        outcome = controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        assert outcome.proposed
        team = outcome.team
        assert set(team.members) <= {"w00000", "w00001", "w00002", "w00003"}
        assert controller.pool.get(task.id).status is TaskStatus.PROPOSED
        assert team.confirm_by == 11.0

    def test_only_interested_workers_are_candidates(self, rig):
        controller, task = rig
        # eligible but NOT interested workers must never be drafted
        for worker_id in controller.workers.ids():
            controller.ledger.mark_eligible(worker_id, task.id)
        _interest(controller, task, ["w00003", "w00004"])
        outcome = controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        assert outcome.proposed
        assert set(outcome.team.members) == {"w00003", "w00004"}

    def test_all_confirm_activates_task(self, rig):
        controller, task = rig
        _interest(controller, task, ["w00000", "w00001", "w00002"])
        outcome = controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        for member in outcome.team.members:
            controller.confirm_member(outcome.team.id, member, now=2.0)
        assert controller.pool.get(task.id).status is TaskStatus.ACTIVE
        assert controller.teams.get(outcome.team.id).status is TeamStatus.CONFIRMED
        for member in outcome.team.members:
            assert (
                controller.ledger.status(member, task.id)
                is RelationshipStatus.UNDERTAKES
            )

    def test_decline_dissolves_and_requeues(self, rig):
        controller, task = rig
        _interest(controller, task, ["w00000", "w00001", "w00002"])
        outcome = controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        members = outcome.team.members
        controller.confirm_member(outcome.team.id, members[0], now=2.0)
        controller.decline_member(outcome.team.id, members[1], now=3.0)
        assert controller.teams.get(outcome.team.id).status is TeamStatus.DISSOLVED
        assert controller.pool.get(task.id).status is TaskStatus.PENDING
        # the confirmed member reverted to Interested (still a candidate)
        assert (
            controller.ledger.status(members[0], task.id)
            is RelationshipStatus.INTERESTED
        )

    def test_reassignment_avoids_dissolved_team(self, rig):
        controller, task = rig
        _interest(controller, task, ["w00000", "w00001", "w00002", "w00003"])
        first = controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        controller.decline_member(first.team.id, first.team.members[0], now=2.0)
        # the decliner is out; remaining interested workers form a new team
        second = controller.try_assign(task, CONSTRAINTS, "greedy", now=3.0)
        assert second.proposed
        assert frozenset(second.team.members) != frozenset(first.team.members)

    def test_confirmation_deadline_dissolves(self, rig):
        controller, task = rig
        _interest(controller, task, ["w00000", "w00001"])
        outcome = controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        assert controller.check_confirmation_deadline(outcome.team.id, now=5.0) is None
        dissolved = controller.check_confirmation_deadline(outcome.team.id, now=12.0)
        assert dissolved is not None
        assert dissolved.status is TeamStatus.DISSOLVED

    def test_undertake_requires_eligibility_even_via_controller(self, rig):
        controller, task = rig
        _interest(controller, task, ["w00000", "w00001"])
        outcome = controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        from repro.errors import RelationshipError

        with pytest.raises(RelationshipError):
            controller.confirm_member(outcome.team.id, "w00005", now=2.0)


class TestSuggestions:
    def test_infeasible_produces_suggestion(self, rig):
        controller, task = rig
        impossible = TeamConstraints(
            min_size=2, critical_mass=3,
            skills=(SkillRequirement("translation", 0.95),),
        )
        _interest(controller, task, ["w00003", "w00004"])  # low skills
        outcome = controller.try_assign(task, impossible, "greedy", now=1.0)
        assert outcome.suggestion is not None
        assert not outcome.proposed
        assert outcome.suggestion.relaxations  # at least one workable fix
        assert outcome.suggestion.best_constraints() is not None

    def test_suggested_relaxation_actually_works(self, rig):
        controller, task = rig
        impossible = TeamConstraints(
            min_size=2, critical_mass=3,
            skills=(SkillRequirement("translation", 0.95),),
        )
        _interest(controller, task, ["w00003", "w00004"])
        outcome = controller.try_assign(task, impossible, "greedy", now=1.0)
        relaxed = outcome.suggestion.best_constraints()
        retry = controller.try_assign(task, relaxed, "greedy", now=2.0)
        # either proposes or at least doesn't claim infeasibility again with
        # the same relaxation set
        assert retry.proposed or retry.suggestion is None

    def test_events_published(self, rig):
        controller, task = rig
        _interest(controller, task, ["w00000", "w00001"])
        controller.try_assign(task, CONSTRAINTS, "greedy", now=1.0)
        assert controller.events.count("team.proposed") == 1
