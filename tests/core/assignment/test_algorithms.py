"""Team-formation algorithms: correctness on hand-built instances."""

import pytest

from repro.core.assignment import (
    AssignmentProblem,
    ExactAssigner,
    GraspAssigner,
    GreedyAssigner,
    IndividualAssigner,
    LocalSearchAssigner,
    RandomAssigner,
    SkillOnlyAssigner,
    default_registry,
)
from repro.core.constraints import SkillRequirement, TeamConstraints
from repro.errors import AssignmentError
from tests.conftest import make_worker

ALL_ASSIGNERS = [
    ExactAssigner(),
    GreedyAssigner(),
    LocalSearchAssigner(),
    GraspAssigner(seed=3),
    RandomAssigner(seed=3),
    SkillOnlyAssigner(),
]


def _problem(five_workers, uniform_affinity, **constraint_kwargs):
    base = dict(min_size=2, critical_mass=3)
    base.update(constraint_kwargs)
    return AssignmentProblem(
        workers=tuple(five_workers),
        affinity=uniform_affinity,
        constraints=TeamConstraints(**base),
    )


class TestExactOptimality:
    def test_picks_highest_affinity_clique(self, five_workers, uniform_affinity):
        problem = _problem(five_workers, uniform_affinity)
        result = ExactAssigner().assign(problem)
        # w1,w2 (tsukuba, 0.9) plus any third member beats mixed teams.
        assert result.feasible
        assert set(result.team) >= {"w1", "w2"} or set(result.team) >= {"w3", "w4"}
        assert result.affinity_score == pytest.approx(
            max(
                uniform_affinity.intra_affinity(t)
                for t in (["w1", "w2", "w3"], ["w1", "w2", "w4"],
                          ["w1", "w2", "w5"], ["w3", "w4", "w1"],
                          ["w1", "w2"], ["w3", "w4"])
            )
        )

    def test_respects_cost_budget(self, uniform_affinity):
        workers = [
            make_worker("w1", cost=5.0, region="tsukuba"),
            make_worker("w2", cost=5.0, region="tsukuba"),
            make_worker("w3", cost=0.1, region="paris"),
            make_worker("w4", cost=0.1, region="paris"),
        ]
        problem = AssignmentProblem(
            workers=tuple(workers),
            affinity=uniform_affinity,
            constraints=TeamConstraints(min_size=2, critical_mass=3,
                                        cost_budget=1.0),
        )
        result = ExactAssigner().assign(problem)
        assert result.feasible and set(result.team) == {"w3", "w4"}

    def test_infeasible_reported(self, five_workers, uniform_affinity):
        problem = _problem(
            five_workers, uniform_affinity,
            skills=(SkillRequirement("translation", 5.0, aggregator="sum"),),
        )
        result = ExactAssigner().assign(problem)
        assert not result.feasible and result.team == ()

    def test_candidate_cap_enforced(self, uniform_affinity):
        workers = tuple(make_worker(f"w{i:03d}") for i in range(30))
        problem = AssignmentProblem(
            workers=workers, affinity=uniform_affinity,
            constraints=TeamConstraints(min_size=2, critical_mass=3),
        )
        with pytest.raises(AssignmentError, match="refuses"):
            ExactAssigner(max_candidates=26).assign(problem)

    def test_min_size_one_allows_singleton(self, five_workers, uniform_affinity):
        problem = _problem(five_workers, uniform_affinity, min_size=1,
                           critical_mass=1)
        result = ExactAssigner().assign(problem)
        assert result.feasible and result.size == 1


class TestApproximations:
    @pytest.mark.parametrize("assigner", ALL_ASSIGNERS, ids=lambda a: a.name)
    def test_feasible_on_easy_instance(self, assigner, five_workers,
                                       uniform_affinity):
        problem = _problem(five_workers, uniform_affinity)
        result = assigner.assign(problem)
        assert result.feasible
        workers = [problem.worker_by_id(w) for w in result.team]
        assert problem.constraints.is_satisfied_by(workers)

    def test_greedy_matches_exact_on_clear_structure(self, five_workers,
                                                     uniform_affinity):
        problem = _problem(five_workers, uniform_affinity)
        exact = ExactAssigner().assign(problem)
        greedy = GreedyAssigner().assign(problem)
        assert greedy.affinity_score <= exact.affinity_score + 1e-9
        assert greedy.affinity_score >= 0.5 * exact.affinity_score

    def test_local_search_never_worse_than_greedy(self, five_workers,
                                                  uniform_affinity):
        problem = _problem(five_workers, uniform_affinity)
        greedy = GreedyAssigner().assign(problem)
        local = LocalSearchAssigner().assign(problem)
        assert local.affinity_score >= greedy.affinity_score - 1e-9

    def test_forbidden_team_avoided(self, five_workers, uniform_affinity):
        best = ExactAssigner().assign(_problem(five_workers, uniform_affinity))
        problem = AssignmentProblem(
            workers=tuple(five_workers),
            affinity=uniform_affinity,
            constraints=TeamConstraints(min_size=2, critical_mass=3),
            forbidden_teams=frozenset({frozenset(best.team)}),
        )
        for assigner in ALL_ASSIGNERS:
            result = assigner.assign(problem)
            if result.feasible:
                assert frozenset(result.team) != frozenset(best.team), assigner.name

    def test_random_deterministic_per_seed(self, five_workers, uniform_affinity):
        problem = _problem(five_workers, uniform_affinity)
        first = RandomAssigner(seed=5).assign(problem)
        second = RandomAssigner(seed=5).assign(problem)
        assert first.team == second.team

    def test_empty_candidates(self, uniform_affinity):
        problem = AssignmentProblem(
            workers=(), affinity=uniform_affinity,
            constraints=TeamConstraints(min_size=1, critical_mass=2),
        )
        for assigner in ALL_ASSIGNERS[1:]:  # exact also fine but trivial
            assert not assigner.assign(problem).feasible


class TestBaselineCharacter:
    def test_skill_only_ignores_affinity(self, uniform_affinity):
        # Highest-skill pair lives in different regions (affinity 0.1);
        # skill-only must pick them anyway.
        workers = [
            make_worker("w1", skill=0.99, region="tsukuba"),
            make_worker("w2", skill=0.98, region="dallas"),
            make_worker("w3", skill=0.2, region="tsukuba"),
            make_worker("w4", skill=0.1, region="tsukuba"),
        ]
        affinity = uniform_affinity
        problem = AssignmentProblem(
            workers=tuple(workers), affinity=affinity,
            constraints=TeamConstraints(
                min_size=2, critical_mass=2,
                skills=(SkillRequirement("translation", 0.5),),
            ),
        )
        result = SkillOnlyAssigner().assign(problem)
        assert set(result.team) == {"w1", "w2"}

    def test_individual_returns_single_worker(self, five_workers,
                                              uniform_affinity):
        problem = _problem(five_workers, uniform_affinity, min_size=2)
        result = IndividualAssigner().assign(problem)
        assert result.feasible and result.size == 1
        assert result.affinity_score == 0.0

    def test_individual_picks_best_quality(self, five_workers, uniform_affinity):
        problem = _problem(
            five_workers, uniform_affinity,
            skills=(SkillRequirement("translation", 0.0),),
        )
        result = IndividualAssigner().assign(problem)
        assert result.team == ("w1",)  # highest skill × reliability


class TestRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        assert set(registry.names()) == {
            "exact", "greedy", "local_search", "grasp", "random",
            "skill_only", "individual",
        }

    def test_create_unknown(self):
        with pytest.raises(AssignmentError, match="unknown"):
            default_registry().create("magic")

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(AssignmentError, match="already"):
            registry.register("greedy", GreedyAssigner)

    def test_custom_registration(self):
        registry = default_registry()
        registry.register("mine", GreedyAssigner)
        assert "mine" in registry
        assert isinstance(registry.create("mine"), GreedyAssigner)

    def test_duplicate_workers_rejected(self, five_workers, uniform_affinity):
        with pytest.raises(AssignmentError, match="duplicate"):
            AssignmentProblem(
                workers=tuple(five_workers) + (five_workers[0],),
                affinity=uniform_affinity,
                constraints=TeamConstraints(),
            )
