"""Task pool lifecycle and queries."""

import pytest

from repro.core.tasks import TaskKind, TaskPool, TaskStatus
from repro.errors import PlatformError


@pytest.fixture
def pool(db):
    return TaskPool(db)


def _task(pool, **kwargs):
    base = dict(project_id="p1", kind=TaskKind.OPEN_FILL, instruction="do it")
    base.update(kwargs)
    return pool.create(**base)


class TestLifecycle:
    def test_create_persists(self, pool, db):
        task = _task(pool, predicate="translate", key_values=("s1",))
        row = db.table("task").get((task.id,))
        assert row["predicate"] == "translate"
        assert row["key_values"] == ["s1"]

    def test_status_flow(self, pool):
        task = _task(pool)
        pool.assign_team(task.id, "team1")
        assert pool.get(task.id).status is TaskStatus.PROPOSED
        pool.activate(task.id)
        assert pool.get(task.id).status is TaskStatus.ACTIVE
        pool.complete(task.id, {"text": "done"})
        assert pool.get(task.id).result == {"text": "done"}

    def test_double_complete_rejected(self, pool):
        task = _task(pool)
        pool.complete(task.id, {})
        with pytest.raises(PlatformError, match="already completed"):
            pool.complete(task.id, {})

    def test_clear_team_returns_to_pending(self, pool):
        task = _task(pool)
        pool.assign_team(task.id, "team1")
        pool.clear_team(task.id)
        reloaded = pool.get(task.id)
        assert reloaded.status is TaskStatus.PENDING
        assert reloaded.team_id is None

    def test_payload_update_merges(self, pool):
        task = _task(pool, payload={"a": 1})
        pool.update_payload(task.id, b=2)
        assert pool.get(task.id).payload == {"a": 1, "b": 2}

    def test_set_assignee(self, pool):
        task = _task(pool)
        pool.set_assignee(task.id, "w9")
        assert pool.get(task.id).assignee == "w9"

    def test_unknown_task(self, pool):
        with pytest.raises(PlatformError, match="unknown task"):
            pool.get("nope")


class TestQueries:
    def test_root_vs_micro(self, pool):
        root = _task(pool)
        micro = _task(pool, assignee="w1", parent_task_id=root.id,
                      kind=TaskKind.DRAFT)
        assert root.is_root and not micro.is_root
        assert pool.pending_root_tasks() == [pool.get(root.id)]

    def test_micro_tasks_for_worker(self, pool):
        root = _task(pool)
        mine = _task(pool, assignee="w1", parent_task_id=root.id,
                     kind=TaskKind.DRAFT)
        _task(pool, assignee="w2", parent_task_id=root.id, kind=TaskKind.DRAFT)
        assert [t.id for t in pool.micro_tasks_for("w1")] == [mine.id]

    def test_completed_micro_not_listed(self, pool):
        root = _task(pool)
        micro = _task(pool, assignee="w1", parent_task_id=root.id,
                      kind=TaskKind.DRAFT)
        pool.complete(micro.id, {})
        assert pool.micro_tasks_for("w1") == []

    def test_by_status_filters_project(self, pool):
        _task(pool, project_id="p1")
        _task(pool, project_id="p2")
        assert len(pool.by_status(TaskStatus.PENDING, "p1")) == 1

    def test_children_of(self, pool):
        root = _task(pool)
        child_a = _task(pool, assignee="w", parent_task_id=root.id,
                        kind=TaskKind.DRAFT)
        child_b = _task(pool, assignee="w", parent_task_id=root.id,
                        kind=TaskKind.REVIEW)
        assert [t.id for t in pool.children_of(root.id)] == [child_a.id, child_b.id]

    def test_counts(self, pool):
        _task(pool)
        done = _task(pool)
        pool.complete(done.id, {})
        assert pool.counts() == {"pending": 1, "completed": 1}

    def test_rehydration(self, db):
        pool = TaskPool(db)
        task = _task(pool, payload={"x": [1, 2]})
        fresh = TaskPool(db)
        loaded = fresh.get(task.id)
        assert loaded.payload == {"x": [1, 2]}
        assert loaded.kind is TaskKind.OPEN_FILL
