"""Project manager and constraint serialisation."""

import math

import pytest

from repro.core.constraints import SkillRequirement, TeamConstraints
from repro.core.projects import (
    ProjectManager,
    ProjectStatus,
    SchemeKind,
    constraints_from_dict,
    constraints_to_dict,
)
from repro.errors import PlatformError


@pytest.fixture
def manager(db):
    return ProjectManager(db)


def _register(manager, **kwargs):
    base = dict(
        name="proj",
        requester="req",
        cylog_source="p(1).",
        scheme=SchemeKind.SEQUENTIAL,
        constraints=TeamConstraints(min_size=2, critical_mass=4),
    )
    base.update(kwargs)
    return manager.register(**base)


class TestManager:
    def test_register_and_get(self, manager):
        project = _register(manager)
        assert manager.get(project.id).name == "proj"

    def test_unknown_project(self, manager):
        with pytest.raises(PlatformError):
            manager.get("nope")

    def test_update_constraints(self, manager):
        project = _register(manager)
        updated = manager.update_constraints(
            project.id, TeamConstraints(min_size=1, critical_mass=2)
        )
        assert updated.constraints.critical_mass == 2
        assert manager.get(project.id).constraints.critical_mass == 2

    def test_status_transitions(self, manager):
        project = _register(manager)
        manager.set_status(project.id, ProjectStatus.PAUSED)
        assert manager.active() == []
        manager.set_status(project.id, ProjectStatus.ACTIVE)
        assert len(manager.active()) == 1

    def test_rehydration(self, db):
        manager = ProjectManager(db)
        project = _register(
            manager,
            constraints=TeamConstraints(
                min_size=2, critical_mass=3,
                skills=(SkillRequirement("x", 0.4, aggregator="sum"),),
                required_languages=frozenset({"fr"}),
                cost_budget=5.0,
                region="paris",
            ),
            scheme=SchemeKind.HYBRID,
            options={"stages": [{"name": "s1"}]},
        )
        fresh = ProjectManager(db)
        loaded = fresh.get(project.id)
        assert loaded.scheme is SchemeKind.HYBRID
        assert loaded.constraints.skills[0].aggregator == "sum"
        assert loaded.constraints.region == "paris"
        assert loaded.options == {"stages": [{"name": "s1"}]}


class TestConstraintSerialisation:
    def test_roundtrip_preserves_everything(self):
        constraints = TeamConstraints(
            min_size=2, critical_mass=5,
            skills=(SkillRequirement("a", 0.3), SkillRequirement("b", 0.9, "noisy_or")),
            required_languages=frozenset({"en", "ja"}),
            language_proficiency=0.4,
            quality_threshold=0.6,
            cost_budget=12.5,
            region="tsukuba",
            recruitment_deadline=100.0,
            confirmation_window=25.0,
        )
        assert constraints_from_dict(constraints_to_dict(constraints)) == constraints

    def test_infinite_budget_round_trips_as_null(self):
        constraints = TeamConstraints()
        payload = constraints_to_dict(constraints)
        assert payload["cost_budget"] is None
        assert constraints_from_dict(payload).cost_budget == math.inf

    def test_from_empty_dict_gives_defaults(self):
        constraints = constraints_from_dict({})
        assert constraints.min_size == 1
        assert constraints.critical_mass == 5
