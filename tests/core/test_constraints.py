"""Desired-human-factor constraints and relaxations."""

import math

import pytest

from repro.core.constraints import SkillRequirement, TeamConstraints
from repro.errors import PlatformError
from tests.conftest import make_worker


class TestSkillRequirement:
    def test_max_aggregator(self):
        requirement = SkillRequirement("translation", 0.8)
        team = [make_worker("a", skill=0.9), make_worker("b", skill=0.1)]
        assert requirement.satisfied_by(team)

    def test_sum_aggregator(self):
        requirement = SkillRequirement("translation", 1.0, aggregator="sum")
        team = [make_worker("a", skill=0.6), make_worker("b", skill=0.5)]
        assert requirement.satisfied_by(team)
        assert not requirement.satisfied_by(team[:1])

    def test_noisy_or_aggregator(self):
        requirement = SkillRequirement("translation", 0.74, aggregator="noisy_or")
        team = [make_worker("a", skill=0.5), make_worker("b", skill=0.5)]
        assert requirement.team_level(team) == pytest.approx(0.75)
        assert requirement.satisfied_by(team)

    def test_unknown_aggregator(self):
        with pytest.raises(PlatformError):
            SkillRequirement("x", 0.5, aggregator="median")

    def test_empty_team_level(self):
        assert SkillRequirement("x", 0.5).team_level([]) == 0.0


class TestTeamConstraints:
    def test_size_bounds_validated(self):
        with pytest.raises(PlatformError):
            TeamConstraints(min_size=0)
        with pytest.raises(PlatformError):
            TeamConstraints(min_size=4, critical_mass=3)

    def test_member_screen_language(self):
        constraints = TeamConstraints(required_languages=frozenset({"fr"}),
                                      language_proficiency=0.5)
        speaks = make_worker("a", languages={"fr": 0.6})
        mute = make_worker("b", languages={"fr": 0.2})
        assert constraints.member_eligible(speaks)
        assert not constraints.member_eligible(mute)

    def test_member_screen_region(self):
        constraints = TeamConstraints(region="paris")
        assert constraints.member_eligible(make_worker("a", region="paris"))
        assert not constraints.member_eligible(make_worker("b", region="dallas"))

    def test_team_quality_noisy_or(self):
        constraints = TeamConstraints(
            skills=(SkillRequirement("translation", 0.0),)
        )
        team = [make_worker("a", skill=0.5, reliability=1.0),
                make_worker("b", skill=0.5, reliability=1.0)]
        assert constraints.team_quality(team) == pytest.approx(0.75)

    def test_quality_without_skills_uses_reliability(self):
        constraints = TeamConstraints()
        team = [make_worker("a", reliability=0.8)]
        assert constraints.team_quality(team) == pytest.approx(0.8)

    def test_cost_budget_violation_message(self):
        constraints = TeamConstraints(cost_budget=1.0)
        team = [make_worker("a", cost=0.7), make_worker("b", cost=0.6)]
        violations = constraints.violations(team)
        assert any("exceeds budget" in v for v in violations)

    def test_critical_mass_violation(self):
        constraints = TeamConstraints(min_size=1, critical_mass=2)
        team = [make_worker(f"w{i}") for i in range(3)]
        assert any("critical mass" in v for v in constraints.violations(team))

    def test_min_size_violation(self):
        constraints = TeamConstraints(min_size=2, critical_mass=4)
        assert any("below minimum" in v
                   for v in constraints.violations([make_worker("a")]))

    def test_feasible_team_no_violations(self):
        constraints = TeamConstraints(
            min_size=2, critical_mass=3,
            skills=(SkillRequirement("translation", 0.6),),
            quality_threshold=0.3,
        )
        team = [make_worker("a", skill=0.9), make_worker("b", skill=0.4)]
        assert constraints.is_satisfied_by(team)

    def test_skill_violation_includes_level(self):
        constraints = TeamConstraints(skills=(SkillRequirement("translation", 0.9),))
        violations = constraints.violations([make_worker("a", skill=0.3)])
        assert any("translation" in v and "0.300" in v for v in violations)


class TestRelaxations:
    def test_every_relaxation_is_single_step(self):
        constraints = TeamConstraints(
            min_size=2,
            critical_mass=3,
            skills=(SkillRequirement("x", 0.5),),
            required_languages=frozenset({"fr"}),
            quality_threshold=0.5,
            cost_budget=2.0,
            region="paris",
        )
        relaxations = constraints.relaxations()
        descriptions = [d for d, _ in relaxations]
        assert any("quality" in d for d in descriptions)
        assert any("critical mass" in d for d in descriptions)
        assert any("minimum team size" in d for d in descriptions)
        assert any("skill" in d for d in descriptions)
        assert any("budget" in d for d in descriptions)
        assert any("region" in d for d in descriptions)
        assert any("language" in d for d in descriptions)

    def test_relaxed_objects_differ_in_one_dimension(self):
        constraints = TeamConstraints(quality_threshold=0.5)
        description, relaxed = constraints.relaxations()[0]
        assert "quality" in description
        assert relaxed.quality_threshold == pytest.approx(0.4)
        assert relaxed.critical_mass == constraints.critical_mass

    def test_unbounded_budget_not_relaxed(self):
        constraints = TeamConstraints()
        assert constraints.cost_budget == math.inf
        assert not any("budget" in d for d, _ in constraints.relaxations())
