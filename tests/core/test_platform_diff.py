"""Randomized differential check of the incremental platform round.

Two :class:`Crowd4U` instances receive the *same* randomized operation
stream — worker registrations, factor edits, interest declarations,
membership confirmations/declines, micro-task submissions, constraint
updates, ad-hoc task posts and time steps.  One instance runs the
dirty-tracked incremental round, the other the recompute-everything
``full`` round.  After every scenario the persistent state — the
relationship ledger, the task pool and the team registry, i.e. everything
the storage engine holds — must be byte-identical, and the incremental
instance must additionally pass its own from-scratch eligibility
cross-check.

The CI ``platform-diff`` job runs this module with
``PLATFORM_DIFF_EXAMPLES=40``, mirroring the ``engine-diff`` oracle gate;
the local default keeps the tier-1 suite fast.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core import Crowd4U, HumanFactors, SkillRequirement, TeamConstraints
from repro.core.projects import SchemeKind
from repro.core.relationships import RelationshipStatus
from repro.core.teams import TeamStatus

EXAMPLES = int(os.environ.get("PLATFORM_DIFF_EXAMPLES", "6"))

pytestmark = pytest.mark.platform_diff

_CYLOG_SOURCE = """
    open translate(seg: text, out: text) key (seg) asking "Translate {seg}".
    segment("s1"). segment("s2"). segment("s3").
    eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
    translated(S, T) :- segment(S), translate(S, T).
"""

_REGIONS = ("tsukuba", "paris", "lyon", "osaka")


def _random_factors(rng: random.Random) -> HumanFactors:
    return HumanFactors(
        native_languages=frozenset({rng.choice(("en", "ja"))}),
        languages={"fr": rng.choice((0.2, 0.4, 0.6, 0.9))},
        region=rng.choice(_REGIONS),
        skills={"translation": rng.choice((0.3, 0.5, 0.7, 0.9))},
        reliability=rng.choice((0.6, 0.8, 0.95)),
    )


def _random_constraints(rng: random.Random) -> TeamConstraints:
    return TeamConstraints(
        min_size=rng.choice((1, 2)),
        critical_mass=rng.choice((2, 3)),
        skills=(SkillRequirement("translation", rng.choice((0.2, 0.4))),),
    )


def _state_fingerprint(platform: Crowd4U) -> str:
    """Everything the storage engine persists, in deterministic order."""
    relationships = sorted(
        (row["worker_id"], row["task_id"], row["status"])
        for row in platform.db.table("relationship").rows()
    )
    tasks = sorted(
        (
            row["id"], row["status"], row["team_id"], row["assignee"],
            row["parent_task_id"], repr(row["result"]),
        )
        for row in platform.db.table("task").rows()
    )
    teams = sorted(
        (team.id, team.task_id, team.status.value, tuple(team.members),
         tuple(sorted(team.confirmed)))
        for team in platform.teams.all()
    )
    return repr((relationships, tasks, teams))


def _drive(pair: tuple[Crowd4U, Crowd4U], rng: random.Random) -> None:
    """Apply one random operation to both platforms.

    Choices are derived from the first (incremental) instance's public
    state; if the instances had already diverged, an op may be illegal on
    the second one — which the test then reports as a failure.
    """
    inc, _ = pair
    op = rng.choice(
        ("worker", "worker", "update", "interest", "interest",
         "confirm", "decline", "micro", "constraints", "post", "step", "step")
    )
    if op == "worker":
        factors = _random_factors(rng)
        name = f"w{rng.randrange(10_000)}"
        for platform in pair:
            platform.register_worker(name, factors)
    elif op == "update" and len(inc.workers):
        worker_id = rng.choice(inc.workers.ids())
        factors = _random_factors(rng)
        for platform in pair:
            platform.update_worker_factors(worker_id, factors)
    elif op == "interest" and len(inc.workers):
        worker_id = rng.choice(inc.workers.ids())
        tasks = inc.eligible_tasks(worker_id)
        candidates = [
            t.id for t in tasks
            if inc.ledger.status(worker_id, t.id) is RelationshipStatus.ELIGIBLE
        ]
        if candidates:
            task_id = rng.choice(candidates)
            for platform in pair:
                platform.declare_interest(worker_id, task_id)
    elif op in ("confirm", "decline"):
        proposed = [t for t in inc.teams.all() if t.status is TeamStatus.PROPOSED]
        if proposed:
            team = rng.choice(sorted(proposed, key=lambda t: t.id))
            unconfirmed = sorted(set(team.members) - set(team.confirmed))
            if unconfirmed:
                worker_id = rng.choice(unconfirmed)
                for platform in pair:
                    if op == "confirm":
                        platform.confirm_membership(worker_id, team.task_id)
                    else:
                        platform.decline_membership(worker_id, team.task_id)
    elif op == "micro":
        micro = [
            (t.id, t.assignee)
            for w in inc.workers.ids()
            for t in inc.tasks_for_worker(w)
            if t.assignee == w and t.parent_task_id is not None
        ]
        if micro:
            task_id, worker_id = rng.choice(sorted(micro))
            for platform in pair:
                platform.submit_micro_result(
                    task_id, worker_id, {"text": f"by-{worker_id}", "quality": 0.8}
                )
    elif op == "constraints" and len(inc.projects):
        project_id = rng.choice(sorted(p.id for p in inc.projects.active()))
        constraints = _random_constraints(rng)
        for platform in pair:
            platform.update_constraints(project_id, constraints)
    elif op == "post" and len(inc.projects):
        project_id = rng.choice(sorted(p.id for p in inc.projects.active()))
        instruction = f"custom-{rng.randrange(100)}"
        for platform in pair:
            platform.post_task(project_id, instruction)
    elif op == "step":
        inc_platform, full_platform = pair
        inc_platform.step(cross_check=True)
        full_platform.step(full=True)


@pytest.mark.parametrize("seed", range(EXAMPLES))
def test_incremental_matches_full_recompute(seed: int) -> None:
    rng = random.Random(1000 + seed)
    pair = (Crowd4U(seed=seed, incremental=True), Crowd4U(seed=seed, incremental=False))
    for platform in pair:
        for i in range(3):
            platform.register_worker(
                f"seed-w{i}", _random_factors(random.Random(seed * 7 + i))
            )
    # One CyLog-eligibility project and one constraint-screen project.
    for platform in pair:
        platform.register_project(
            "subs", "req", _CYLOG_SOURCE,
            scheme=SchemeKind.SEQUENTIAL,
            constraints=_random_constraints(random.Random(seed)),
        )
        platform.register_project(
            "survey", "req",
            'open rate(item: text, verdict: text) key (item).\nitem("i1"). item("i2").\n'
            "rated(I, S) :- item(I), rate(I, S).",
            scheme=SchemeKind.SEQUENTIAL,
            constraints=_random_constraints(random.Random(seed + 1)),
        )
    for _ in range(40):
        _drive(pair, rng)
        assert _state_fingerprint(pair[0]) == _state_fingerprint(pair[1])
    # Final settled rounds, still in lockstep.
    for _ in range(3):
        pair[0].step(cross_check=True)
        pair[1].step(full=True)
        assert _state_fingerprint(pair[0]) == _state_fingerprint(pair[1])
    # The incremental instance must actually have skipped work.
    stats = pair[0].stats
    assert stats.eligibility_pairs_checked + stats.eligibility_pairs_skipped > 0
