"""Platform facade integration tests: the full Figure-2 loop."""

import pytest

from repro.config import RuntimeConfig
from repro.core import Crowd4U, HumanFactors, SkillRequirement, TeamConstraints
from repro.core.projects import SchemeKind
from repro.core.relationships import RelationshipStatus
from repro.core.tasks import TaskKind, TaskStatus
from repro.errors import PlatformError

SOURCE = """
    open translate(seg: text, out: text) key (seg) asking "Translate {seg}".
    segment("s1"). segment("s2").
    eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
    translated(S, T) :- segment(S), translate(S, T).
"""


@pytest.fixture
def platform():
    crowd = Crowd4U(seed=11)
    for i in range(6):
        crowd.register_worker(
            f"worker{i}",
            HumanFactors(
                native_languages=frozenset({"en"}),
                languages={"fr": 0.8 if i < 4 else 0.2},
                region="tsukuba" if i % 2 == 0 else "paris",
                skills={"translation": 0.9 - 0.1 * i},
                reliability=0.95,
            ),
        )
    return crowd


@pytest.fixture
def project(platform):
    return platform.register_project(
        "subs", "req", SOURCE,
        scheme=SchemeKind.SEQUENTIAL,
        constraints=TeamConstraints(
            min_size=2, critical_mass=3,
            skills=(SkillRequirement("translation", 0.5),),
        ),
    )


def run_chain(platform):
    """Complete every addressed micro-task until none remain."""
    for _ in range(40):
        micro = [
            t for w in platform.workers.ids()
            for t in platform.tasks_for_worker(w)
        ]
        if not micro:
            return
        for task in micro:
            platform.submit_micro_result(
                task.id, task.assignee,
                {"text": f"{task.payload.get('previous_text', '')}+{task.assignee}",
                 "quality": 0.8},
            )


class TestTaskGeneration:
    def test_cylog_generates_tasks(self, platform, project):
        platform.step()
        tasks = platform.pool.pending_root_tasks(project.id)
        assert {t.key_values for t in tasks} == {("s1",), ("s2",)}
        assert all(t.kind is TaskKind.OPEN_FILL for t in tasks)
        assert platform.events.count("task.generated") == 2

    def test_eligibility_from_cylog_rule(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        eligible = platform.ledger.eligible_workers(task.id)
        # rule: fr proficiency >= 0.5 → workers 0..3 only
        assert eligible == ["w00000", "w00001", "w00002", "w00003"]

    def test_eligible_tasks_on_user_page(self, platform, project):
        platform.step()
        assert len(platform.eligible_tasks("w00000")) == 2
        assert platform.eligible_tasks("w00005") == []

    def test_late_worker_becomes_eligible(self, platform, project):
        platform.step()
        newcomer = platform.register_worker(
            "late", HumanFactors(languages={"fr": 0.9},
                                 skills={"translation": 0.9}),
        )
        platform.step()  # eligibility recomputed for pending tasks
        task = platform.pool.pending_root_tasks(project.id)[0]
        assert newcomer.id in platform.ledger.eligible_workers(task.id)


class TestDemandRevocation:
    """Retraction-aware demand maintenance: when the fixpoint stops
    demanding an open key, the task it materialised is cancelled."""

    def test_retracted_demand_cancels_pending_task(self, platform, project):
        platform.step()
        tasks = platform.pool.pending_root_tasks(project.id)
        assert {t.key_values for t in tasks} == {("s1",), ("s2",)}
        doomed = next(t for t in tasks if t.key_values == ("s2",))
        platform.processor(project.id).retract_facts("segment", [("s2",)])
        assert platform.pool.get(doomed.id).status is TaskStatus.CANCELLED
        assert {
            t.key_values for t in platform.pool.pending_root_tasks(project.id)
        } == {("s1",)}
        assert platform.events.count("task.cancelled") == 1
        # Cancelled tasks leave the assignment round entirely.
        assert not platform.controller.is_dirty(doomed.id)

    def test_resurrected_demand_gets_a_fresh_task(self, platform, project):
        platform.step()
        processor = platform.processor(project.id)
        processor.retract_facts("segment", [("s2",)])
        processor.add_facts("segment", [("s2",)])
        processor.run()
        live = [
            t for t in platform.pool.pending_root_tasks(project.id)
            if t.key_values == ("s2",)
        ]
        assert len(live) == 1
        assert platform.events.count("task.generated") == 3
        assert platform.events.count("task.cancelled") == 1


class TestAssignmentLoop:
    def test_interest_then_team_then_active(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        for worker_id in platform.ledger.eligible_workers(task.id)[:3]:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        reloaded = platform.pool.get(task.id)
        assert reloaded.status is TaskStatus.PROPOSED
        team = platform.teams.get(reloaded.team_id)
        for member in team.members:
            platform.confirm_membership(member, task.id)
        assert platform.pool.get(task.id).status is TaskStatus.ACTIVE

    def test_interest_requires_eligibility(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        from repro.errors import RelationshipError

        with pytest.raises(RelationshipError):
            platform.declare_interest("w00005", task.id)  # fr too weak

    def test_full_collaboration_produces_facts(self, platform, project):
        platform.step()
        for task in platform.pool.pending_root_tasks(project.id):
            for worker_id in platform.ledger.eligible_workers(task.id)[:3]:
                platform.declare_interest(worker_id, task.id)
        platform.step()
        for task in platform.pool.by_status(TaskStatus.PROPOSED):
            team = platform.teams.get(task.team_id)
            for member in team.members:
                platform.confirm_membership(member, task.id)
        run_chain(platform)
        processor = platform.processor(project.id)
        assert processor.facts("translated")
        assert not platform.pool.open_tasks()
        results = platform.results_for(project.id)
        assert len(results) == 2
        assert all(r["team_id"] for r in results)

    def test_affinity_reinforced_after_completion(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        members = platform.ledger.eligible_workers(task.id)[:2]
        for worker_id in members:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        reloaded = platform.pool.get(task.id)
        team = platform.teams.get(reloaded.team_id)
        before = platform.affinity.get(*team.members[:2])
        for member in team.members:
            platform.confirm_membership(member, task.id)
        run_chain(platform)
        after = platform.affinity.get(*team.members[:2])
        assert after != before  # reinforcement moved the pair

    def test_relationships_completed(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        for worker_id in platform.ledger.eligible_workers(task.id)[:2]:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        team = platform.teams.get(platform.pool.get(task.id).team_id)
        for member in team.members:
            platform.confirm_membership(member, task.id)
        run_chain(platform)
        for member in team.members:
            assert (
                platform.ledger.status(member, task.id)
                is RelationshipStatus.COMPLETED
            )


class TestGuards:
    def test_submit_by_wrong_worker_rejected(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        for worker_id in platform.ledger.eligible_workers(task.id)[:2]:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        team = platform.teams.get(platform.pool.get(task.id).team_id)
        for member in team.members:
            platform.confirm_membership(member, task.id)
        micro = platform.tasks_for_worker(team.members[0])
        if not micro:  # chain starts with the other member
            micro = platform.tasks_for_worker(team.members[1])
        stranger = "w00005"
        with pytest.raises(PlatformError, match="addressed"):
            platform.submit_micro_result(micro[0].id, stranger, {"text": "hi"})

    def test_confirm_without_team_rejected(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        with pytest.raises(PlatformError, match="no proposed team"):
            platform.confirm_membership("w00000", task.id)

    def test_unknown_processor(self, platform):
        with pytest.raises(PlatformError):
            platform.processor("projXXXX")

    def test_recruitment_deadline_expires_task(self, platform):
        project = platform.register_project(
            "stale", "req", 'open f(k: text, v: text) key (k).\nseed("x").\n'
            "out(K, V) :- seed(K), f(K, V).",
            constraints=TeamConstraints(
                min_size=2, critical_mass=3, recruitment_deadline=2.0,
            ),
        )
        platform.step()  # generates the task; nobody declares interest
        platform.step()
        platform.step()
        platform.step()
        expired = platform.pool.by_status(TaskStatus.EXPIRED, project.id)
        assert len(expired) == 1
        assert platform.events.count("task.expired") == 1

    def test_snapshot_shape(self, platform, project):
        platform.step()
        snapshot = platform.snapshot()
        assert snapshot["workers"] == 6
        assert snapshot["projects"] == 1
        assert "pending" in snapshot["tasks"]
        assert snapshot["engine_shards"] == 1


class TestShardedPlatform:
    """The platform round on a sharded/parallel project engine must match
    the default single-store configuration byte for byte."""

    def _populated(self, **kwargs):
        crowd = Crowd4U(seed=11, **kwargs)
        for i in range(6):
            crowd.register_worker(
                f"worker{i}",
                HumanFactors(
                    native_languages=frozenset({"en"}),
                    languages={"fr": 0.8 if i < 4 else 0.2},
                    region="tsukuba" if i % 2 == 0 else "paris",
                    skills={"translation": 0.9 - 0.1 * i},
                    reliability=0.95,
                ),
            )
        crowd.register_project("subs", "req", SOURCE)
        return crowd

    def test_sharded_rounds_match_single_store(self):
        single = self._populated()
        sharded = self._populated(
            config=RuntimeConfig(shards=4, executor="thread", max_workers=2)
        )
        try:
            for _ in range(3):
                # cross_check runs the built-in eligibility oracle too.
                single.step(cross_check=True)
                sharded.step(cross_check=True)
            p_single = single.processor(next(iter(single.projects.active())).id)
            p_sharded = sharded.processor(
                next(iter(sharded.projects.active())).id
            )
            assert (
                p_sharded.engine.store.snapshot()
                == p_single.engine.store.snapshot()
            )
            assert sorted(
                r.key_values for r in p_sharded.pending_requests()
            ) == sorted(r.key_values for r in p_single.pending_requests())
            assert sharded.snapshot()["engine_shards"] == 4
        finally:
            sharded.close()
            single.close()

    def test_sharded_answer_and_revoke_flow(self):
        crowd = self._populated(config=RuntimeConfig(shards=4))
        try:
            project = next(iter(crowd.projects.active()))
            crowd.step()
            processor = crowd.processor(project.id)
            request = processor.pending_requests()[0]
            processor.supply_answer(request, {"out": "FR"})
            assert processor.facts("translated")
            processor.revoke_answer("translate", request.key_values)
            assert not processor.facts("translated")
            # The revoked key is demanded again.
            assert any(
                r.key_values == request.key_values
                for r in processor.pending_requests()
            )
        finally:
            crowd.close()


class TestSimultaneousOnPlatform:
    def test_joint_flow_via_public_api(self, platform):
        project = platform.register_project(
            "news", "req",
            "open report(topic: text, article: text) key (topic).\n"
            'topic("rain").\npublished(T, A) :- topic(T), report(T, A).',
            scheme=SchemeKind.SIMULTANEOUS,
            constraints=TeamConstraints(min_size=2, critical_mass=2),
        )
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        for worker_id in platform.ledger.eligible_workers(task.id)[:2]:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        team = platform.teams.get(platform.pool.get(task.id).team_id)
        for member in team.members:
            platform.confirm_membership(member, task.id)
        # stage 1: SNS solicitation
        for member in team.members:
            for micro in platform.tasks_for_worker(member):
                platform.submit_micro_result(
                    micro.id, member, {"sns_id": f"{member}@sns"}
                )
        # stage 2: the joint task is addressed to everyone
        joint = [
            t for t in platform.tasks_for_worker(team.members[0])
            if t.kind is TaskKind.JOINT
        ]
        assert len(joint) == 1
        platform.contribute(task.id, team.members[0], "intro paragraph")
        platform.contribute(task.id, team.members[1], "details paragraph")
        platform.submit_micro_result(
            joint[0].id, team.members[0], {"quality": 0.9}
        )
        processor = platform.processor(project.id)
        published = processor.sorted_facts("published")
        assert len(published) == 1
        assert "intro paragraph" in published[0][1]
        assert "details paragraph" in published[0][1]
