"""Event bus semantics."""

from repro.core.events import EventBus


class TestEventBus:
    def test_publish_returns_event(self):
        bus = EventBus()
        event = bus.publish("x", 1.0, a=1)
        assert event.kind == "x" and event["a"] == 1

    def test_sequence_monotonic(self):
        bus = EventBus()
        first = bus.publish("x", 0.0)
        second = bus.publish("y", 0.0)
        assert second.seq == first.seq + 1

    def test_kind_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("x", seen.append)
        bus.publish("x", 0.0)
        bus.publish("y", 0.0)
        assert [e.kind for e in seen] == ["x"]

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe(None, seen.append)
        bus.publish("x", 0.0)
        bus.publish("y", 0.0)
        assert len(seen) == 2

    def test_log_filter_and_count(self):
        bus = EventBus()
        bus.publish("x", 0.0)
        bus.publish("x", 1.0)
        bus.publish("y", 2.0)
        assert bus.count("x") == 2
        assert [e.time for e in bus.log("x")] == [0.0, 1.0]

    def test_log_bounded(self):
        bus = EventBus(max_log=2)
        for i in range(5):
            bus.publish("x", float(i))
        assert len(bus.log()) == 2  # keeps the earliest entries

    def test_clear(self):
        bus = EventBus()
        bus.publish("x", 0.0)
        bus.clear()
        assert bus.log() == []
