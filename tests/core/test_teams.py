"""Team registry: proposal, confirmation, dissolution bookkeeping."""

import pytest

from repro.core.teams import TeamRegistry, TeamStatus
from repro.errors import PlatformError


@pytest.fixture
def registry(db):
    return TeamRegistry(db)


def _propose(registry, members=("a", "b"), task="t1", **kwargs):
    base = dict(
        task_id=task,
        members=tuple(members),
        affinity_score=0.8,
        algorithm="greedy",
        proposed_at=1.0,
        confirm_by=10.0,
    )
    base.update(kwargs)
    return registry.propose(**base)


class TestProposal:
    def test_empty_team_rejected(self, registry):
        with pytest.raises(PlatformError):
            _propose(registry, members=())

    def test_persisted(self, registry, db):
        team = _propose(registry)
        row = db.table("team").get((team.id,))
        assert row["members"] == ["a", "b"]
        assert row["status"] == "proposed"

    def test_confirmations_accumulate(self, registry):
        team = _propose(registry)
        team = registry.confirm_member(team.id, "a")
        assert team.status is TeamStatus.PROPOSED
        team = registry.confirm_member(team.id, "b")
        assert team.status is TeamStatus.CONFIRMED
        assert team.all_confirmed

    def test_non_member_confirmation_rejected(self, registry):
        team = _propose(registry)
        with pytest.raises(PlatformError, match="not a member"):
            registry.confirm_member(team.id, "zzz")

    def test_unknown_team(self, registry):
        with pytest.raises(PlatformError, match="unknown team"):
            registry.get("nope")


class TestQueries:
    def test_for_task(self, registry):
        _propose(registry, task="t1")
        _propose(registry, task="t2")
        assert len(registry.for_task("t1")) == 1

    def test_dissolved_member_sets(self, registry):
        team_a = _propose(registry, members=("a", "b"))
        team_b = _propose(registry, members=("c", "d"))
        registry.set_status(team_a.id, TeamStatus.DISSOLVED)
        assert registry.previously_dissolved_members("t1") == {
            frozenset({"a", "b"})
        }
        registry.set_status(team_b.id, TeamStatus.DISSOLVED)
        assert len(registry.previously_dissolved_members("t1")) == 2

    def test_rehydration(self, db):
        registry = TeamRegistry(db)
        team = _propose(registry)
        registry.confirm_member(team.id, "a")
        fresh = TeamRegistry(db)
        loaded = fresh.get(team.id)
        assert loaded.confirmed == frozenset({"a"})
        assert loaded.confirm_by == 10.0
