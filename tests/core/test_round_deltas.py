"""The platform's round-delta subscription surface (`RoundDeltas`).

The delta-stream simulation driver rides this feed instead of rescanning
eligibility snapshots; these tests pin its contract: full re-derives are
reported as ``full_tasks`` (per-worker changes not enumerated), incremental
rounds report exact per-task added/removed worker sets, and recording only
happens while a listener is subscribed.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import Crowd4U, HumanFactors, RoundDeltas, TeamConstraints
from repro.core.projects import SchemeKind

_CYLOG = """
open translate(seg: text, out: text) key (seg) asking "Translate {seg}".
segment("s1"). segment("s2").
translated(S, T) :- segment(S), translate(S, T).
eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
"""


def _factors(fr: float) -> HumanFactors:
    return HumanFactors(
        native_languages=frozenset({"en"}),
        languages={"fr": fr},
        region="paris",
        skills={"translation": 0.8},
        reliability=0.9,
    )


def _platform() -> tuple[Crowd4U, str]:
    """Returns the platform and the initially-ineligible worker's id."""
    platform = Crowd4U(seed=0)
    platform.register_worker("able", _factors(0.9))
    novice = platform.register_worker("novice", _factors(0.2))
    platform.register_project(
        "subs", "req", _CYLOG,
        scheme=SchemeKind.SEQUENTIAL,
        constraints=TeamConstraints(min_size=1, critical_mass=2),
    )
    return platform, novice.id


class TestRoundDeltas:
    def test_first_round_reports_new_tasks_as_full(self):
        platform, novice = _platform()
        received: list[RoundDeltas] = []
        platform.subscribe_round_deltas(received.append)
        platform.step()
        assert len(received) == 1
        deltas = received[0]
        assert deltas.round_no == 1
        # Newly generated tasks miss the round cursor -> full re-derive;
        # subscribers treat every worker as potentially changed there.
        task_ids = {t.id for t in platform.pool.all()}
        assert deltas.full_tasks
        assert deltas.full_tasks <= frozenset(task_ids)

    def test_incremental_round_reports_exact_worker_sets(self):
        platform, novice = _platform()
        platform.step()
        platform.step()  # settle: tasks now ride the incremental path
        received: list[RoundDeltas] = []
        platform.subscribe_round_deltas(received.append)
        platform.update_worker_factors(novice, _factors(0.8))
        platform.step()
        (deltas,) = received
        assert novice in deltas.dirty_workers
        added = set().union(*deltas.eligible_added.values())
        assert added == {novice}

    def test_constraint_screen_revocation_reported_as_removed(self):
        # Constraint-screened projects (no CyLog eligible rule) re-screen
        # dirty workers every round; a failing screen revokes eligibility
        # and the revocation must surface in ``eligible_removed``.
        platform = Crowd4U(seed=0)
        worker = platform.register_worker("polyglot", _factors(0.9))
        platform.register_project(
            "survey", "req",
            'open rate(item: text, verdict: text) key (item).\n'
            'item("i1").\nrated(I, V) :- item(I), rate(I, V).',
            scheme=SchemeKind.SEQUENTIAL,
            constraints=TeamConstraints(
                min_size=1,
                critical_mass=2,
                required_languages=frozenset({"fr"}),
                language_proficiency=0.5,
            ),
        )
        platform.step()
        platform.step()
        received: list[RoundDeltas] = []
        platform.subscribe_round_deltas(received.append)
        platform.update_worker_factors(worker.id, _factors(0.1))
        platform.step()
        (deltas,) = received
        assert worker.id in deltas.dirty_workers
        removed = set().union(set(), *deltas.eligible_removed.values())
        assert removed == {worker.id}

    def test_deltas_are_frozen(self):
        platform, novice = _platform()
        received: list[RoundDeltas] = []
        platform.subscribe_round_deltas(received.append)
        platform.step()
        with pytest.raises(dataclasses.FrozenInstanceError):
            received[0].round_no = 99

    def test_no_recording_without_listeners(self):
        platform, novice = _platform()
        platform.step()
        assert platform._recording is None

    def test_every_listener_notified(self):
        platform, novice = _platform()
        first: list[RoundDeltas] = []
        second: list[RoundDeltas] = []
        platform.subscribe_round_deltas(first.append)
        platform.subscribe_round_deltas(second.append)
        platform.step()
        assert first == second
        assert len(first) == 1


class TestMarkEligibleSignal:
    def test_insert_returns_true_then_false(self):
        platform, novice = _platform()
        platform.step()
        task = platform.pool.all()[0]
        assert platform.ledger.mark_eligible(novice, task.id) is True
        assert platform.ledger.mark_eligible(novice, task.id) is False
