"""Worker manager: registration, persistence, queries."""

import pytest

from repro.core.human_factors import HumanFactors
from repro.core.workers import WorkerManager
from repro.errors import PlatformError


@pytest.fixture
def manager(db):
    return WorkerManager(db)


def _factors(**kwargs):
    base = dict(
        native_languages=frozenset({"en"}),
        languages={"fr": 0.4},
        region="tsukuba",
        skills={"translation": 0.7},
        reliability=0.9,
        cost=0.5,
        coordinates=(36.0, 140.1),
    )
    base.update(kwargs)
    return HumanFactors(**base)


class TestRegistration:
    def test_ids_are_sequential(self, manager):
        w0 = manager.register("ann", _factors())
        w1 = manager.register("bob", _factors())
        assert (w0.id, w1.id) == ("w00000", "w00001")

    def test_profile_persisted(self, manager, db):
        worker = manager.register("ann", _factors())
        row = db.table("worker_profile").get((worker.id,))
        assert row["region"] == "tsukuba"
        assert row["skills"] == {"translation": 0.7}

    def test_rehydration_from_database(self, db):
        first = WorkerManager(db)
        worker = first.register("ann", _factors())
        second = WorkerManager(db)  # fresh manager, same database
        loaded = second.get(worker.id)
        assert loaded.name == "ann"
        assert loaded.factors.coordinates == (36.0, 140.1)
        assert loaded.factors.speaks("fr", 0.4)

    def test_update_factors(self, manager, db):
        worker = manager.register("ann", _factors())
        manager.update_factors(worker.id, _factors(region="paris"))
        assert manager.get(worker.id).factors.region == "paris"
        assert db.table("worker_profile").get((worker.id,))["region"] == "paris"

    def test_remove(self, manager):
        worker = manager.register("ann", _factors())
        manager.remove(worker.id)
        with pytest.raises(PlatformError):
            manager.get(worker.id)
        assert len(manager) == 0

    def test_unknown_worker(self, manager):
        with pytest.raises(PlatformError, match="unknown worker"):
            manager.get("nope")
        assert manager.maybe("nope") is None


class TestQueries:
    def test_all_sorted_by_id(self, manager):
        manager.register("c", _factors())
        manager.register("a", _factors())
        ids = [w.id for w in manager.all()]
        assert ids == sorted(ids)

    def test_with_language(self, manager):
        manager.register("ann", _factors(languages={"fr": 0.8}))
        manager.register("bob", _factors(languages={}))
        assert len(manager.with_language("fr", 0.5)) == 1
        assert len(manager.with_language("en")) == 2  # native for both

    def test_in_region(self, manager):
        manager.register("ann", _factors(region="paris"))
        manager.register("bob", _factors())
        assert [w.name for w in manager.in_region("paris")] == ["ann"]

    def test_fact_rows_merged(self, manager):
        manager.register("ann", _factors())
        manager.register("bob", _factors())
        rows = manager.fact_rows()
        assert len(rows["worker"]) == 2
        assert len(rows["worker_region"]) == 2
