"""Deadline monitoring and result-coordination bookkeeping."""

import pytest

from repro.core import Crowd4U, HumanFactors, TeamConstraints
from repro.core.collaboration.base import TeamResult
from repro.core.relationships import RelationshipStatus
from repro.core.tasks import TaskKind, TaskStatus
from repro.core.teams import TeamStatus


@pytest.fixture
def platform():
    crowd = Crowd4U(seed=8)
    for i in range(5):
        crowd.register_worker(
            f"w{i}",
            HumanFactors(
                native_languages=frozenset({"en"}),
                region="tsukuba",
                skills={"general": 0.8},
                reliability=0.9,
            ),
        )
    return crowd


SOURCE = (
    'open f(k: text, v: text) key (k).\nseed("x").\n'
    "out(K, V) :- seed(K), f(K, V)."
)


class TestMonitor:
    def test_confirmation_timeout_dissolves_team(self, platform):
        project = platform.register_project(
            "p", "req", SOURCE,
            constraints=TeamConstraints(min_size=2, critical_mass=3,
                                        confirmation_window=3.0),
        )
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        for worker_id in platform.ledger.eligible_workers(task.id)[:2]:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        team_id = platform.pool.get(task.id).team_id
        assert team_id is not None
        # nobody confirms; let the window elapse
        for _ in range(5):
            platform.step()
        assert platform.teams.get(team_id).status is TeamStatus.DISSOLVED
        # the task went back to the pool and a NEW team was proposed
        reloaded = platform.pool.get(task.id)
        assert reloaded.status in (TaskStatus.PENDING, TaskStatus.PROPOSED)
        assert platform.events.count("team.dissolved") >= 1

    def test_monitor_counters(self, platform):
        project = platform.register_project(
            "p", "req", SOURCE,
            constraints=TeamConstraints(min_size=4, critical_mass=5,
                                        recruitment_deadline=1.0),
        )
        platform.step()
        platform.step()
        counters = platform.monitor.tick(platform.now + 10)
        total_expired = counters["tasks_expired"] + platform.events.count(
            "task.expired"
        )
        assert total_expired >= 1
        assert platform.pool.by_status(TaskStatus.EXPIRED, project.id)


class TestCoordinator:
    def _finished_team(self, platform):
        project = platform.register_project(
            "p", "req", SOURCE,
            constraints=TeamConstraints(min_size=2, critical_mass=3),
        )
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        for worker_id in platform.ledger.eligible_workers(task.id)[:2]:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        task = platform.pool.get(task.id)
        team = platform.teams.get(task.team_id)
        for member in team.members:
            platform.confirm_membership(member, task.id)
        return project, platform.pool.get(task.id), team

    def test_record_updates_everything(self, platform):
        project, task, team = self._finished_team(platform)
        result = TeamResult(
            task_id=task.id, team_id=team.id,
            payload={"text": "done", "fill_values": {"v": "done"}},
            submitted_by=team.members[0], time=platform.now,
        )
        before_affinity = platform.affinity.get(*team.members[:2])
        row_id = platform.coordinator.record(result, quality=0.9,
                                             now=platform.now)
        assert row_id.startswith("res")
        assert platform.pool.get(task.id).status is TaskStatus.COMPLETED
        assert platform.teams.get(team.id).status is TeamStatus.FINISHED
        for member in team.members:
            assert (
                platform.ledger.status(member, task.id)
                is RelationshipStatus.COMPLETED
            )
        assert platform.affinity.get(*team.members[:2]) != before_affinity
        stored = platform.coordinator.results_for_project(project.id)
        assert len(stored) == 1 and stored[0]["quality"] == 0.9

    def test_results_filtered_by_project(self, platform):
        project, task, team = self._finished_team(platform)
        result = TeamResult(
            task_id=task.id, team_id=team.id, payload={"text": "x"},
            submitted_by=team.members[0], time=platform.now,
        )
        platform.coordinator.record(result, quality=1.0, now=platform.now)
        assert platform.coordinator.results_for_project("other") == []


class TestScenarioMicroKinds:
    def test_micro_task_kind_lifecycle_events(self, platform):
        project, task, team = TestCoordinator()._finished_team(platform)
        # the sequential scheme created a DRAFT for the stronger member
        drafts = [
            t for t in platform.pool.children_of(task.id)
            if t.kind is TaskKind.DRAFT
        ]
        assert len(drafts) == 1
        platform.submit_micro_result(
            drafts[0].id, drafts[0].assignee, {"text": "v0", "quality": 0.8}
        )
        assert platform.events.count("micro.completed") == 1
        reviews = [
            t for t in platform.pool.children_of(task.id)
            if t.kind is TaskKind.REVIEW
        ]
        assert len(reviews) == 1  # dynamically generated follow-up
