"""Affinity matrix and its builders."""

import pytest

from repro.core.affinity import (
    AffinityMatrix,
    AffinityWeights,
    affinity_from_factors,
    language_overlap,
    region_proximity,
    skill_complementarity,
)
from repro.errors import PlatformError
from tests.conftest import make_worker


class TestMatrix:
    def test_symmetry(self):
        matrix = AffinityMatrix()
        matrix.set("a", "b", 0.7)
        assert matrix.get("b", "a") == 0.7

    def test_default_value(self):
        assert AffinityMatrix(default=0.2).get("x", "y") == 0.2

    def test_self_affinity_zero(self):
        assert AffinityMatrix(default=0.5).get("a", "a") == 0.0

    def test_self_pair_set_rejected(self):
        with pytest.raises(PlatformError):
            AffinityMatrix().set("a", "a", 1.0)

    def test_values_clamped(self):
        matrix = AffinityMatrix()
        matrix.set("a", "b", 7.0)
        assert matrix.get("a", "b") == 1.0

    def test_default_clamped_into_unit_interval(self):
        assert AffinityMatrix(default=7.0).default == 1.0
        assert AffinityMatrix(default=-3.0).default == 0.0
        assert AffinityMatrix(default=9.0).get("x", "y") == 1.0

    def test_negative_set_value_clamped_to_zero(self):
        matrix = AffinityMatrix(default=0.4)
        matrix.set("a", "b", -2.5)
        assert matrix.get("a", "b") == 0.0  # stored, not falling back to default

    def test_pair_normalises_order(self):
        from repro.core.affinity import _pair

        assert _pair("b", "a") == ("a", "b")
        assert _pair("a", "b") == ("a", "b")

    def test_pair_rejects_identical_workers_with_message(self):
        from repro.core.affinity import _pair

        with pytest.raises(PlatformError, match="distinct workers"):
            _pair("w", "w")

    def test_duplicate_team_member_semantics(self):
        # Read paths treat a duplicated member as a zero-affinity self pair…
        matrix = AffinityMatrix(default=0.5)
        assert matrix.intra_affinity(["a", "a"]) == 0.0
        # …but write paths reject it via _pair.
        with pytest.raises(PlatformError, match="distinct workers"):
            matrix.reinforce(["a", "a"], 1.0)

    def test_intra_affinity_sum_of_pairs(self):
        matrix = AffinityMatrix()
        matrix.set("a", "b", 0.5)
        matrix.set("b", "c", 0.3)
        matrix.set("a", "c", 0.1)
        assert matrix.intra_affinity(["a", "b", "c"]) == pytest.approx(0.9)
        assert matrix.intra_affinity(["a"]) == 0.0

    def test_density(self):
        matrix = AffinityMatrix()
        matrix.set("a", "b", 0.6)
        matrix.set("b", "c", 0.0)
        matrix.set("a", "c", 0.0)
        assert matrix.density(["a", "b", "c"]) == pytest.approx(0.2)
        assert matrix.density(["a"]) == 0.0

    def test_min_pair(self):
        matrix = AffinityMatrix()
        matrix.set("a", "b", 0.6)
        assert matrix.min_pair(["a", "b", "c"]) == 0.0
        assert matrix.min_pair(["a"]) == 1.0

    def test_marginal_gain(self):
        matrix = AffinityMatrix()
        matrix.set("a", "c", 0.4)
        matrix.set("b", "c", 0.2)
        assert matrix.marginal_gain(["a", "b"], "c") == pytest.approx(0.6)

    def test_reinforce_moves_towards_quality(self):
        matrix = AffinityMatrix()
        matrix.set("a", "b", 0.5)
        matrix.reinforce(["a", "b"], 1.0, learning_rate=0.5)
        assert matrix.get("a", "b") == pytest.approx(0.75)
        matrix.reinforce(["a", "b"], 0.0, learning_rate=0.5)
        assert matrix.get("a", "b") == pytest.approx(0.375)

    def test_reinforce_creates_pairs_from_default(self):
        matrix = AffinityMatrix()
        matrix.reinforce(["a", "b", "c"], 1.0, learning_rate=0.2)
        assert matrix.get("a", "c") == pytest.approx(0.2)
        assert len(matrix) == 3


class TestComponents:
    def test_language_overlap_weighted_jaccard(self):
        a = make_worker("a", languages={"fr": 0.6})   # en native too
        b = make_worker("b", languages={"fr": 0.8})
        # shared: en min(1,1)=1, fr min(.6,.8)=.6 over union {en, fr}
        assert language_overlap(a, b) == pytest.approx((1.0 + 0.6) / 2)

    def test_language_overlap_empty(self):
        from repro.core.human_factors import HumanFactors
        from repro.core.workers import Worker

        a = Worker("a", "a", HumanFactors())
        b = Worker("b", "b", HumanFactors())
        assert language_overlap(a, b) == 0.0

    def test_region_proximity_same_region(self):
        a = make_worker("a", region="paris")
        b = make_worker("b", region="paris")
        assert region_proximity(a, b) == 1.0

    def test_region_proximity_distance_decay(self):
        from dataclasses import replace

        a = make_worker("a", region="x")
        b = make_worker("b", region="y")
        a = a.with_factors(replace(a.factors, coordinates=(35.0, 139.0)))
        b = b.with_factors(replace(b.factors, coordinates=(35.0, 139.5)))
        near = region_proximity(a, b)
        b_far = b.with_factors(replace(b.factors, coordinates=(48.0, 2.0)))
        far = region_proximity(a, b_far)
        assert 0 < far < near < 1

    def test_region_proximity_unknown(self):
        a = make_worker("a", region="x")
        b = make_worker("b", region="y")
        assert region_proximity(a, b) == 0.0

    def test_skill_complementarity_prefers_complements(self):
        specialist_a = make_worker("a", skill=0.9, skill_name="writing")
        specialist_b = make_worker("b", skill=0.9, skill_name="editing")
        twin_a = make_worker("c", skill=0.9, skill_name="writing")
        twin_b = make_worker("d", skill=0.9, skill_name="writing")
        assert skill_complementarity(specialist_a, specialist_b) > \
            skill_complementarity(twin_a, twin_b)


class TestBuilder:
    def test_same_region_pairs_scored_higher(self, five_workers):
        matrix = affinity_from_factors(five_workers)
        same = matrix.get("w1", "w2")      # both tsukuba
        cross = matrix.get("w1", "w5")     # tsukuba vs dallas
        assert same > cross

    def test_weights_validated(self):
        with pytest.raises(PlatformError):
            AffinityWeights(language=-1)
        with pytest.raises(PlatformError):
            AffinityWeights(language=0, region=0, skill_complementarity=0)

    def test_zero_weight_disables_component(self, five_workers):
        matrix = affinity_from_factors(
            five_workers,
            AffinityWeights(language=0, region=1, skill_complementarity=0),
        )
        assert matrix.get("w1", "w2") == 1.0   # same region only
        assert matrix.get("w1", "w3") == 0.0

    def test_pairs_iteration_sorted(self, five_workers):
        matrix = affinity_from_factors(five_workers)
        pairs = list(matrix.pairs())
        assert pairs == sorted(pairs)
