"""Collaboration schemes driven directly (without the full platform)."""

import pytest

from repro.core.collaboration import (
    CollaborationContext,
    Document,
    HybridScheme,
    SequentialScheme,
    SimultaneousScheme,
    default_scheme_registry,
)
from repro.core.events import EventBus
from repro.core.tasks import TaskKind, TaskPool
from repro.core.teams import Team, TeamStatus
from repro.errors import CollaborationError
from repro.storage import Database


def make_context(members=("w1", "w2", "w3"), options=None, skills=None):
    pool = TaskPool(Database())
    root = pool.create("p1", TaskKind.OPEN_FILL, "write the thing",
                       predicate="report", key_values=("k",),
                       fill_columns=("article",))
    team = Team(
        id="team1", task_id=root.id, members=tuple(members),
        status=TeamStatus.CONFIRMED, confirmed=frozenset(members),
    )
    skills = skills or {m: 0.5 for m in members}
    ctx = CollaborationContext(
        root_task=root,
        team=team,
        pool=pool,
        events=EventBus(),
        document=Document("doc1"),
        options=options or {},
        worker_skill=lambda wid: skills.get(wid, 0.0),
    )
    return ctx


class TestSequential:
    def test_chain_ordered_by_skill(self):
        ctx = make_context(skills={"w1": 0.2, "w2": 0.9, "w3": 0.5})
        scheme = SequentialScheme()
        first_tasks = scheme.start(ctx, now=0.0)
        assert len(first_tasks) == 1
        assert first_tasks[0].assignee == "w2"  # strongest drafts first
        assert first_tasks[0].kind is TaskKind.DRAFT

    def test_follow_ups_generated_dynamically(self):
        ctx = make_context()
        scheme = SequentialScheme()
        task = scheme.start(ctx, now=0.0)[0]
        chain = ctx.pool.get(ctx.root_task.id).payload["chain"]
        completed = ctx.pool.complete(task.id, {"text": "draft"})
        follow = scheme.on_micro_completed(ctx, completed, {"text": "draft"}, 1.0)
        assert len(follow) == 1
        assert follow[0].kind is TaskKind.REVIEW
        assert follow[0].assignee == chain[1]
        assert follow[0].payload["previous_text"] == "draft"

    def test_completion_after_full_chain(self):
        ctx = make_context(members=("w1", "w2"))
        scheme = SequentialScheme()
        tasks = scheme.start(ctx, now=0.0)
        step = 0
        while tasks:
            task = tasks[0]
            completed = ctx.pool.complete(task.id, {"text": f"v{step}"})
            tasks = scheme.on_micro_completed(
                ctx, completed, {"text": f"v{step}"}, float(step)
            )
            step += 1
        assert scheme.is_complete(ctx)
        result = scheme.build_result(ctx, submitted_by="w1", now=9.0)
        assert result.payload["text"] == "v1"           # last improvement wins
        assert result.payload["fill_values"] == {"article": "v1"}
        assert result.team_id == "team1"

    def test_multiple_passes_lengthen_chain(self):
        ctx = make_context(members=("w1", "w2"))
        SequentialScheme(passes=2).start(ctx, now=0.0)
        assert len(ctx.pool.get(ctx.root_task.id).payload["chain"]) == 4

    def test_invalid_passes(self):
        with pytest.raises(CollaborationError):
            SequentialScheme(passes=0)


class TestSimultaneous:
    def test_solicits_sns_from_every_member(self):
        ctx = make_context()
        scheme = SimultaneousScheme()
        tasks = scheme.start(ctx, now=0.0)
        assert len(tasks) == 3
        assert all(t.kind is TaskKind.SOLICIT_SNS for t in tasks)
        assert {t.assignee for t in tasks} == {"w1", "w2", "w3"}

    def _solicit_all(self, ctx, scheme):
        tasks = scheme.start(ctx, now=0.0)
        joint = None
        for task in tasks:
            completed = ctx.pool.complete(task.id, {"sns_id": f"{task.assignee}@g"})
            out = scheme.on_micro_completed(
                ctx, completed, {"sns_id": f"{task.assignee}@g"}, 1.0
            )
            if out:
                joint = out[0]
        return joint

    def test_joint_task_after_all_sns(self):
        ctx = make_context()
        scheme = SimultaneousScheme()
        joint = self._solicit_all(ctx, scheme)
        assert joint is not None and joint.kind is TaskKind.JOINT
        assert joint.payload["sns_ids"] == {
            "w1": "w1@g", "w2": "w2@g", "w3": "w3@g",
        }
        assert joint.payload["addressed_to"] == ["w1", "w2", "w3"]

    def test_contribute_before_joint_rejected(self):
        ctx = make_context()
        scheme = SimultaneousScheme()
        scheme.start(ctx, now=0.0)
        with pytest.raises(CollaborationError, match="not yet created"):
            scheme.contribute(ctx, "w1", "early", now=0.5)

    def test_contributions_and_single_submission(self):
        ctx = make_context()
        scheme = SimultaneousScheme()
        joint = self._solicit_all(ctx, scheme)
        scheme.contribute(ctx, "w1", "part one", now=2.0)
        scheme.contribute(ctx, "w2", "part two", now=2.1)
        outsider_error = None
        try:
            scheme.contribute(ctx, "outsider", "spam", now=2.2)
        except CollaborationError as exc:
            outsider_error = exc
        assert outsider_error is not None
        assert not scheme.is_complete(ctx)
        ctx.pool.set_assignee(joint.id, "w1")
        completed = ctx.pool.complete(joint.id, {})
        scheme.on_micro_completed(ctx, completed, {}, 3.0)
        assert scheme.is_complete(ctx)
        result = scheme.build_result(ctx, submitted_by="w1", now=4.0)
        assert "part one" in result.payload["text"]
        assert "part two" in result.payload["text"]
        assert result.payload["contributors"] == {"w1": 1, "w2": 1}


class TestHybrid:
    def test_default_stages_split_team(self):
        ctx = make_context(members=("w1", "w2", "w3", "w4"))
        scheme = HybridScheme()
        tasks = scheme.start(ctx, now=0.0)
        allocation = ctx.pool.get(ctx.root_task.id).payload["stage_allocation"]
        assert set(allocation) == {"facts", "testimonials"}
        assert len(allocation["facts"]) + len(allocation["testimonials"]) == 4
        assert all(len(v) >= 1 for v in allocation.values())
        # facts stage starts a DRAFT; testimonials stage solicits SNS ids
        kinds = {t.kind for t in tasks}
        assert TaskKind.DRAFT in kinds and TaskKind.SOLICIT_SNS in kinds

    def test_runs_to_completion(self):
        ctx = make_context(members=("w1", "w2", "w3", "w4"))
        scheme = HybridScheme()
        open_tasks = list(scheme.start(ctx, now=0.0))
        guard = 0
        while open_tasks and guard < 50:
            guard += 1
            task = open_tasks.pop(0)
            if task.kind is TaskKind.JOINT:
                for member in task.payload["addressed_to"]:
                    scheme.contribute(ctx, member, f"testimony {member}", 5.0)
                ctx.pool.set_assignee(task.id, task.payload["addressed_to"][0])
                result_payload = {}
            elif task.kind is TaskKind.SOLICIT_SNS:
                result_payload = {"sns_id": f"{task.assignee}@g"}
            else:
                result_payload = {"text": f"obs by {task.assignee}"}
            completed = ctx.pool.complete(task.id, result_payload)
            open_tasks.extend(
                scheme.on_micro_completed(ctx, completed, result_payload, 6.0)
            )
        assert scheme.is_complete(ctx)
        result = scheme.build_result(ctx, submitted_by="w1", now=9.0)
        assert set(result.payload["stages"]) == {"facts", "testimonials"}
        assert result.payload["fill_values"]["article"]  # merged text mapped

    def test_custom_stage_layout(self):
        options = {"stages": [
            {"name": "alpha", "scheme": "sequential", "fraction": 0.5},
            {"name": "beta", "scheme": "sequential", "fraction": 0.5},
        ]}
        ctx = make_context(members=("w1", "w2"), options=options)
        scheme = HybridScheme()
        tasks = scheme.start(ctx, now=0.0)
        assert len(tasks) == 2  # one DRAFT per sequential stage
        # namespaced payload keys keep two sequential stages apart
        payload = ctx.pool.get(ctx.root_task.id).payload
        assert "alpha.chain" in payload and "beta.chain" in payload

    def test_unknown_sub_scheme_rejected(self):
        options = {"stages": [{"name": "x", "scheme": "quantum"}]}
        ctx = make_context(options=options)
        with pytest.raises(CollaborationError, match="unknown sub-scheme"):
            HybridScheme().start(ctx, now=0.0)


class TestRegistry:
    def test_default_registry(self):
        registry = default_scheme_registry()
        assert set(registry.names()) == {"sequential", "simultaneous", "hybrid"}
        assert isinstance(registry.create("hybrid"), HybridScheme)

    def test_unknown_scheme(self):
        with pytest.raises(CollaborationError, match="unknown"):
            default_scheme_registry().create("psychic")

    def test_custom_scheme_registration(self):
        registry = default_scheme_registry()
        registry.register("mine", SequentialScheme)
        assert "mine" in registry
