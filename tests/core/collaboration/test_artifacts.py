"""Shared document artefacts."""

import pytest

from repro.core.collaboration.artifacts import Document
from repro.errors import CollaborationError


@pytest.fixture
def document():
    return Document("doc1", title="report")


class TestStructure:
    def test_sections_keep_order(self, document):
        document.add_section("b", heading="B")
        document.add_section("a", heading="A")
        assert document.section_keys == ("b", "a")

    def test_duplicate_section_rejected(self, document):
        document.add_section("x")
        with pytest.raises(CollaborationError):
            document.add_section("x")

    def test_ensure_section_idempotent(self, document):
        first = document.ensure_section("x")
        second = document.ensure_section("x")
        assert first is second

    def test_missing_section(self, document):
        with pytest.raises(CollaborationError):
            document.section("ghost")


class TestEditing:
    def test_edit_records_revision(self, document):
        document.add_section("body")
        revision = document.edit("body", "ann", "first draft", time=1.0)
        assert revision.before == "" and revision.after == "first draft"
        assert document.section("body").text == "first draft"
        assert document.section("body").last_author == "ann"

    def test_append_accumulates(self, document):
        document.add_section("part")
        document.append_text("part", "ann", "one", time=1.0)
        document.append_text("part", "bob", "two", time=2.0)
        assert document.section("part").text == "one\ntwo"

    def test_history_in_time_order(self, document):
        document.add_section("a")
        document.add_section("b")
        document.edit("b", "x", "later", time=5.0)
        document.edit("a", "y", "earlier", time=1.0)
        history = document.history()
        assert [rev.author for _, rev in history] == ["y", "x"]

    def test_contributors_counted(self, document):
        document.add_section("a")
        document.edit("a", "ann", "1", time=1.0)
        document.edit("a", "ann", "2", time=2.0)
        document.edit("a", "bob", "3", time=3.0)
        assert document.contributors() == {"ann": 2, "bob": 1}
        assert document.revision_count() == 3


class TestMerging:
    def test_merged_text_includes_headings(self, document):
        document.add_section("s1", heading="Intro")
        document.edit("s1", "a", "hello", time=1.0)
        document.add_section("s2", heading="Body")
        document.edit("s2", "b", "world", time=2.0)
        merged = document.merged_text()
        assert merged == "## Intro\n\nhello\n\n## Body\n\nworld"

    def test_empty_sections_skipped_in_text(self, document):
        document.add_section("s1")
        assert document.merged_text() == ""
