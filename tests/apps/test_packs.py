"""The E15 scenario packs: small seeded runs with the delta driver."""

from __future__ import annotations

import pytest

from repro.apps import (
    run_disaster_pack,
    run_moderation_pack,
    run_multilingual_pack,
)
from repro.sim import ChurnConfig, TickTimer

TIMING_KEYS = {"ticks", "ticks_per_s", "mean_tick_ms", "p99_tick_ms", "steady_tick_ms"}


class TestModerationPack:
    def test_storms_cancel_pending_tasks(self):
        result = run_moderation_pack(n_workers=50, ticks=26, seed=1)
        assert result.facts["items_injected"] > 0
        assert result.facts["items_retracted"] > 0
        assert result.facts["tasks_cancelled"] > 0
        assert result.facts["reviewed"] > 0
        assert TIMING_KEYS <= set(result.extras["timing"])

    def test_deterministic_across_runs(self):
        a = run_moderation_pack(n_workers=40, ticks=16, seed=4)
        b = run_moderation_pack(n_workers=40, ticks=16, seed=4)
        assert a.facts == b.facts
        assert a.report == b.report


class TestDisasterPack:
    def test_surges_hit_backpressure(self):
        result = run_disaster_pack(n_workers=50, ticks=26, seed=3)
        assert result.facts["cells"] > 0
        assert result.facts["assessed"] > 0
        assert result.facts["reports_admitted"] > 0
        # The tight default queue must visibly push back under surges.
        assert result.facts["reports_rejected"] > 0

    def test_wider_queue_rejects_less(self):
        from repro.serving import ServingConfig

        tight = run_disaster_pack(n_workers=40, ticks=16, seed=3)
        wide = run_disaster_pack(
            n_workers=40, ticks=16, seed=3,
            serving=ServingConfig(queue_depth=100_000, max_batch=100_000),
        )
        assert wide.facts["reports_rejected"] < tight.facts["reports_rejected"]


class TestMultilingualPack:
    def test_churn_and_resurrection(self):
        result = run_multilingual_pack(
            n_workers=50, ticks=26, seed=5,
            churn=ChurnConfig(arrival_rate=1.5, departure_rate=0.02),
        )
        assert result.facts["workers_arrived"] > 0
        assert result.facts["workers_departed"] > 0
        assert result.facts["answers_revoked"] > 0
        assert result.facts["tasks_generated"] > 0
        driver = result.extras["driver"]
        assert len(driver.inactive_workers) == result.facts["workers_departed"]

    def test_all_targets_progress(self):
        result = run_multilingual_pack(n_workers=60, ticks=24, seed=6)
        for lang in ("en", "ja", "fr"):
            assert result.facts[f"done_{lang}"] > 0


class TestTickTimer:
    def test_empty_timer(self):
        timer = TickTimer()
        assert timer.mean_ms() == 0.0
        assert timer.p99_ms() == 0.0
        assert timer.ticks_per_second() == 0.0

    def test_percentiles_and_throughput(self):
        timer = TickTimer([0.01] * 99 + [0.1])
        assert timer.mean_ms() == pytest.approx(10.9)
        assert timer.p99_ms() == pytest.approx(10.0)
        assert timer.percentile_ms(100.0) == pytest.approx(100.0)
        assert timer.ticks_per_second() == pytest.approx(100 / 1.09)

    def test_bad_percentile_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            TickTimer([0.01]).percentile_ms(0.0)
