"""End-to-end demo scenarios on the simulated crowd (§2.5)."""

import pytest

from repro.apps import (
    run_journalism_demo,
    run_surveillance_demo,
    run_translation_demo,
)
from repro.apps.translation import translation_cylog
from repro.cylog import parse_program


@pytest.fixture(scope="module")
def translation():
    return run_translation_demo(n_workers=24, n_clips=3, seed=1, max_steps=250)


@pytest.fixture(scope="module")
def journalism():
    return run_journalism_demo(
        n_workers=24, topics=["storm", "festival"], seed=1, max_steps=250
    )


@pytest.fixture(scope="module")
def surveillance():
    return run_surveillance_demo(
        n_workers=40, regions=["tsukuba", "paris"], periods=["am", "pm"],
        seed=1, max_steps=400,
    )


class TestTranslation:
    def test_reaches_quiescence(self, translation):
        assert translation.report.quiescent

    def test_every_clip_transcribed_and_translated(self, translation):
        assert translation.facts["transcribed"] == 3
        assert translation.facts["translated"] == 3

    def test_second_stage_demanded_dynamically(self, translation):
        # translate tasks are keyed by subtitles, which exist only after
        # transcription: strictly more task generations than clips.
        platform = translation.platform
        generated = platform.events.count("task.generated")
        assert generated == 6  # 3 transcribe + 3 translate

    def test_sequential_chain_produced_reviews(self, translation):
        platform = translation.platform
        kinds = [t.kind.value for t in platform.pool.all()]
        assert "draft" in kinds and "review" in kinds

    def test_results_credited_to_teams(self, translation):
        results = translation.platform.results_for(translation.project_id)
        assert len(results) == 6
        assert all(r["team_id"].startswith("team") for r in results)

    def test_skill_estimates_learned(self, translation):
        assert translation.extras["skill_estimates"] > 0

    def test_cylog_source_parses(self):
        program = parse_program(translation_cylog(["c1"], "German"))
        assert {d.name for d in program.opens} == {"transcribe", "translate"}

    def test_deterministic_given_seed(self):
        first = run_translation_demo(n_workers=18, n_clips=2, seed=5,
                                     max_steps=200)
        second = run_translation_demo(n_workers=18, n_clips=2, seed=5,
                                      max_steps=200)
        assert first.summary() == second.summary()


class TestJournalism:
    def test_reaches_quiescence(self, journalism):
        assert journalism.report.quiescent

    def test_all_topics_published(self, journalism):
        assert journalism.facts["published"] == 2

    def test_simultaneous_flow_used(self, journalism):
        platform = journalism.platform
        kinds = {t.kind.value for t in platform.pool.all()}
        assert "solicit_sns" in kinds and "joint" in kinds

    def test_articles_merge_member_sections(self, journalism):
        processor = journalism.platform.processor(journalism.project_id)
        for _, article in processor.facts("published"):
            assert "Contribution of" in article

    def test_contributions_from_multiple_members(self, journalism):
        assert journalism.report.contributions >= 4


class TestSurveillance:
    def test_reaches_quiescence(self, surveillance):
        assert surveillance.report.quiescent

    def test_grid_fully_covered(self, surveillance):
        assert surveillance.facts["dossiers"] == surveillance.facts["cells"] == 4

    def test_hybrid_stages_ran(self, surveillance):
        platform = surveillance.platform
        kinds = {t.kind.value for t in platform.pool.all()}
        # sequential facts stage and simultaneous testimonials stage
        assert {"draft", "solicit_sns", "joint"} <= kinds

    def test_dossier_contains_both_stages(self, surveillance):
        processor = surveillance.platform.processor(surveillance.project_id)
        for _, _, dossier in processor.facts("dossier"):
            assert "observation" in dossier or "corrected" in dossier
            assert "testimonial" in dossier

    def test_region_eligibility_respected(self, surveillance):
        platform = surveillance.platform
        for team in platform.teams.all():
            if team.status.value != "finished":
                continue
            for member in team.members:
                region = platform.workers.get(member).factors.region
                assert region in ("tsukuba", "paris")
