"""The synchronous admission gate mirrors the server's backpressure."""

from __future__ import annotations

from repro.core import Crowd4U
from repro.serving import AdmissionGate, ServingConfig, WriteOp


def _register_op(i: int) -> WriteOp:
    return WriteOp("register_worker", {"name": f"gate-w{i}"})


class TestAdmissionGate:
    def test_offers_beyond_depth_are_rejected(self):
        gate = AdmissionGate(ServingConfig(queue_depth=3))
        rejected = gate.offer([_register_op(i) for i in range(5)])
        assert rejected == 2
        assert gate.admitted == 3
        assert gate.rejected == 2
        assert gate.depth == 3

    def test_drain_applies_at_most_max_batch(self):
        platform = Crowd4U(seed=0)
        gate = AdmissionGate(ServingConfig(queue_depth=10, max_batch=4))
        gate.offer([_register_op(i) for i in range(7)])
        outcomes = gate.drain(platform)
        assert len(outcomes) == 4
        assert all(o.ok for o in outcomes)
        assert gate.depth == 3
        assert len(platform.workers) == 4
        gate.drain(platform)
        assert gate.depth == 0
        assert len(platform.workers) == 7
        assert gate.applied == 7

    def test_drain_empty_queue_is_noop(self):
        gate = AdmissionGate()
        assert gate.drain(Crowd4U(seed=0)) == []

    def test_queue_frees_up_after_drain(self):
        platform = Crowd4U(seed=0)
        gate = AdmissionGate(ServingConfig(queue_depth=2, max_batch=2))
        assert gate.offer([_register_op(0), _register_op(1), _register_op(2)]) == 1
        gate.drain(platform)
        assert gate.offer([_register_op(3)]) == 0

    def test_failed_ops_still_count_as_applied(self):
        platform = Crowd4U(seed=0)
        gate = AdmissionGate()
        gate.offer([WriteOp("declare_interest", {"worker_id": "nope", "task_id": "t"})])
        outcomes = gate.drain(platform)
        assert len(outcomes) == 1
        assert not outcomes[0].ok
        assert gate.applied == 1
