"""PlatformServer: lifecycle, routing, admission batching, backpressure."""

from __future__ import annotations

import asyncio

import pytest

from repro.config import RuntimeConfig
from repro.core import Crowd4U, HumanFactors
from repro.metrics import Collector, format_stats_table
from repro.serving import PlatformServer, ServerClosed, ServingConfig, ServingStats
from repro.serving.http import HttpClient, http_request

CYLOG_SOURCE = """
    open rate(item: text, verdict: text) key (item) asking "Rate {item}".
    item("i1"). item("i2").
    rated(I, V) :- item(I), rate(I, V).
"""

FACTORS = {
    "native_languages": ["en"],
    "languages": {"fr": 0.8},
    "skills": {"translation": 0.7},
    "reliability": 0.9,
}


def run(coro):
    return asyncio.run(coro)


def make_platform(seed: int = 3) -> Crowd4U:
    platform = Crowd4U(seed=seed)
    platform.register_project("survey", "req", CYLOG_SOURCE)
    return platform


class TestServingConfig:
    def test_defaults_and_with_changes(self):
        config = ServingConfig()
        assert config.port == 0
        changed = config.with_changes(port=8080, max_batch=4)
        assert (changed.port, changed.max_batch) == (8080, 4)
        assert config.port == 0, "with_changes must not mutate the original"

    def test_frozen(self):
        with pytest.raises(Exception):
            ServingConfig().port = 99

    def test_validation(self):
        for bad in (
            {"host": ""},
            {"port": -1},
            {"batch_window": -0.1},
            {"max_batch": 0},
            {"queue_depth": 0},
            {"max_round_lag": 0.0},
            {"retry_after": -1},
            {"max_header_bytes": 0},
            {"max_body_bytes": -1},
        ):
            with pytest.raises(ValueError):
                ServingConfig(**bad)


class TestServingStats:
    def test_coalescing_and_ticks(self):
        stats = ServingStats()
        assert stats.coalescing == 0.0
        stats.record_tick(8, 0.002)
        stats.record_tick(4, 0.005)
        stats.admitted = 12
        assert stats.ticks == 2
        assert stats.applied == 12
        assert stats.coalescing == 6.0
        assert stats.as_dict()["coalescing_x"] == 6.0
        assert stats.tick_latency_max_s == 0.005

    def test_rejected_total(self):
        stats = ServingStats(rejected_depth=2, rejected_lag=1, rejected_closed=3)
        assert stats.rejected == 6

    def test_sections_feed_format_stats_table(self):
        stats = ServingStats(reads=5)
        stats.read_cache.hits = 4
        table = format_stats_table(stats.sections())
        assert "serving" in table and "reads" in table
        assert "serving_read_cache" in table and "hits" in table

    def test_to_collector(self):
        collector = Collector()
        ServingStats(reads=3).to_collector(collector)
        counters = dict(collector.counters)
        assert counters["serving.reads"] == 3
        assert "serving.read_cache.hits" in counters


class TestLifecycle:
    def test_states_and_idempotent_close(self):
        async def go():
            platform = make_platform()
            server = PlatformServer(platform, ServingConfig())
            assert server.state == "new"
            with pytest.raises(RuntimeError, match="not started"):
                server.address
            await server.start()
            assert server.state == "serving"
            host, port = server.address
            assert host == "127.0.0.1" and port > 0
            with pytest.raises(RuntimeError, match="cannot start"):
                await server.start()
            await server.drain()
            assert server.state == "draining"
            await server.close()
            assert server.state == "closed"
            await server.close()  # safe to call twice
            platform.close()

        run(go())

    def test_async_context_manager(self):
        async def go():
            config = RuntimeConfig(serving=ServingConfig(batch_window=0.001))
            server = config.build_server()
            async with server:
                assert server.state == "serving"
                response = await http_request(
                    *server.address, "GET", "/healthz"
                )
                assert response.status == 200
            assert server.state == "closed"
            server.platform.close()

        run(go())

    def test_writes_rejected_while_draining(self):
        async def go():
            platform = make_platform()
            async with PlatformServer(platform, ServingConfig()) as server:
                address = server.address
                await server.drain()
                response = await http_request(*address, "POST", "/step", json_body={})
                assert response.status == 503
                assert server.stats.rejected_closed == 1
            platform.close()

        run(go())

    def test_close_fails_queued_writes(self):
        async def go():
            platform = make_platform()
            server = PlatformServer(platform, ServingConfig())
            await server.start()
            # Freeze the drainer so admitted writes stay queued.
            server._drainer.cancel()
            try:
                await server._drainer
            except asyncio.CancelledError:
                pass
            server._drainer = None
            from repro.serving.ops import WriteOp

            future = server._admit(WriteOp("step", {}))
            assert isinstance(future, asyncio.Future)
            await server.close()
            with pytest.raises(ServerClosed):
                await future
            platform.close()

        run(go())


class TestRoutes:
    def test_read_endpoints(self):
        async def go():
            platform = make_platform()
            worker = platform.register_worker(
                "ann",
                HumanFactors(
                    native_languages=frozenset({"en"}),
                    languages={"fr": 0.8},
                    skills={"translation": 0.7},
                    reliability=0.9,
                ),
            )
            platform.step()
            async with PlatformServer(platform, ServingConfig()) as server:
                async with HttpClient(*server.address) as client:
                    health = await client.request("GET", "/healthz")
                    assert health.parsed_json()["status"] == "serving"

                    snapshot = await client.request("GET", "/snapshot")
                    assert snapshot.parsed_json()["workers"] == 1

                    page = await client.request(
                        "GET", f"/workers/{worker.id}/page"
                    )
                    assert page.status == 200
                    assert b"Worker page" in page.body
                    # Render again: now served from the query cache, and the
                    # hits are attributed to this server's read_cache block.
                    await client.request("GET", f"/workers/{worker.id}/page")
                    assert server.stats.read_cache.hits > 0

                    stats = (await client.request("GET", "/stats")).parsed_json()
                    assert stats["serving"]["reads"] >= 4
                    assert stats["read_cache"]["hits"] > 0
                    assert "platform" in stats and "query_cache" in stats

                    missing = await client.request("GET", "/tasks/t1/ui")
                    assert missing.status == 400

                    nowhere = await client.request("GET", "/no/such/route")
                    assert nowhere.status == 404

                    put = await client.request("PUT", "/workers", json_body={})
                    assert put.status == 405
            platform.close()

        run(go())

    def test_write_endpoints_round_trip(self):
        async def go():
            platform = make_platform()
            async with PlatformServer(platform, ServingConfig()) as server:
                async with HttpClient(*server.address) as client:
                    created = await client.request(
                        "POST",
                        "/workers",
                        json_body={"name": "ann", "factors": FACTORS},
                    )
                    body = created.parsed_json()
                    assert created.status == 200 and body["ok"]
                    worker_id = body["result"]["worker_id"]
                    assert platform.workers.get(worker_id).name == "ann"
                    assert body["tick"] >= 1

                    stepped = await client.request(
                        "POST", "/step", json_body={"dt": 1.0}
                    )
                    assert stepped.parsed_json()["ok"]

                    answered = await client.request(
                        "POST",
                        f"/projects/{platform.projects.active()[0].id}/answers",
                        json_body={
                            "predicate": "rate",
                            "key_values": {"item": "i1"},
                            "fill_values": {"verdict": "good"},
                        },
                    )
                    assert answered.parsed_json()["ok"]

                    bad = await client.request("POST", "/workers", json_body={})
                    assert bad.status == 400
                    assert not bad.parsed_json()["ok"]

                    unknown = await client.request(
                        "POST", "/tasks/t1/interest", json_body={}
                    )
                    assert unknown.status == 400  # missing worker_id

                    nowhere = await client.request(
                        "POST", "/no/such/route", json_body={}
                    )
                    assert nowhere.status == 404
            assert server.stats.op_errors == 1
            platform.close()

        run(go())

    def test_form_encoded_write(self):
        async def go():
            platform = make_platform()
            async with PlatformServer(platform, ServingConfig()) as server:
                response = await http_request(
                    *server.address,
                    "POST",
                    "/workers",
                    body=b"name=lee",
                    headers={
                        "Content-Type": "application/x-www-form-urlencoded",
                        "Content-Length": "8",
                    },
                )
                assert response.parsed_json()["ok"]
                assert len(platform.workers) == 1
            platform.close()

        run(go())


class TestAdmission:
    def test_concurrent_writes_coalesce(self):
        async def go():
            platform = make_platform()
            config = ServingConfig(batch_window=0.05, max_batch=64)
            async with PlatformServer(platform, config) as server:
                address = server.address

                async def register(i: int):
                    return await http_request(
                        address[0],
                        address[1],
                        "POST",
                        "/workers",
                        json_body={"name": f"w{i}", "factors": FACTORS},
                    )

                responses = await asyncio.gather(*(register(i) for i in range(16)))
                assert all(r.parsed_json()["ok"] for r in responses)
            assert server.stats.admitted == 16
            assert server.stats.applied == 16
            # The point of admission batching: far fewer engine
            # continuations than requests.
            assert server.stats.ticks < 16
            assert server.stats.coalescing > 1.0
            assert len(platform.workers) == 16
            platform.close()

        run(go())

    def test_queue_depth_backpressure(self):
        async def go():
            platform = make_platform()
            server = PlatformServer(platform, ServingConfig(queue_depth=2))
            await server.start()
            # Freeze the drainer so the queue can only grow.
            server._drainer.cancel()
            try:
                await server._drainer
            except asyncio.CancelledError:
                pass
            from repro.serving.ops import WriteOp

            assert isinstance(server._admit(WriteOp("step", {})), asyncio.Future)
            assert isinstance(server._admit(WriteOp("step", {})), asyncio.Future)
            rejected = server._admit(WriteOp("step", {}))
            assert rejected.status == 429
            assert rejected.headers["Retry-After"] == str(server.config.retry_after)
            assert server.stats.rejected_depth == 1
            await server.close()
            platform.close()

        run(go())

    def test_round_lag_backpressure(self):
        async def go():
            platform = make_platform()
            server = PlatformServer(
                platform, ServingConfig(max_round_lag=0.001, queue_depth=100)
            )
            await server.start()
            server._drainer.cancel()
            try:
                await server._drainer
            except asyncio.CancelledError:
                pass
            from repro.serving.ops import WriteOp

            assert isinstance(server._admit(WriteOp("step", {})), asyncio.Future)
            await asyncio.sleep(0.01)  # queue continuously non-empty
            rejected = server._admit(WriteOp("step", {}))
            assert rejected.status == 429
            assert server.stats.rejected_lag == 1
            await server.close()
            platform.close()

        run(go())

    def test_drain_flushes_queued_writes(self):
        async def go():
            platform = make_platform()
            config = ServingConfig(batch_window=0.02)
            async with PlatformServer(platform, config) as server:
                address = server.address
                posts = [
                    asyncio.create_task(
                        http_request(
                            address[0],
                            address[1],
                            "POST",
                            "/workers",
                            json_body={"name": f"w{i}", "factors": FACTORS},
                        )
                    )
                    for i in range(4)
                ]
                while server.stats.admitted < 4:  # let the posts hit the queue
                    await asyncio.sleep(0.001)
                await server.drain()
                responses = await asyncio.gather(*posts)
                assert all(r.parsed_json()["ok"] for r in responses)
            assert len(platform.workers) == 4
            platform.close()

        run(go())


class TestJournalAndStats:
    def test_journal_records_applied_order(self):
        async def go():
            platform = make_platform()
            server = PlatformServer(
                platform, ServingConfig(), record_journal=True
            )
            async with server:
                async with HttpClient(*server.address) as client:
                    for i in range(3):
                        await client.request(
                            "POST",
                            "/workers",
                            json_body={"name": f"w{i}", "factors": FACTORS},
                        )
                    await client.request("POST", "/step", json_body={})
            kinds = [op.kind for _, op in server.journal]
            assert kinds == ["register_worker"] * 3 + ["step"]
            ticks = [tick for tick, _ in server.journal]
            assert ticks == sorted(ticks), "journal must be in applied order"
            platform.close()

        run(go())

    def test_stats_sections_and_collector(self):
        async def go():
            platform = make_platform()
            async with PlatformServer(platform, ServingConfig()) as server:
                await http_request(*server.address, "GET", "/healthz")
                sections = server.stats_sections()
                assert {"serving", "serving_read_cache", "platform"} <= set(
                    sections
                )
                table = format_stats_table(sections)
                assert "serving" in table
                collector = Collector()
                server.collect_stats(collector)
                assert dict(collector.counters)["serving.reads"] == 1
            platform.close()

        run(go())
