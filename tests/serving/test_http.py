"""The stdlib HTTP/1.1 layer: parsing, limits, encoding, client round-trip."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serving.http import (
    HttpError,
    HttpResponse,
    encode_response,
    read_request,
    read_response,
)


def parse(raw: bytes, **limits):
    """Feed ``raw`` into a fresh stream and parse one request off it."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **limits)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        request = parse(
            b"GET /tasks/t1/ui?worker=w1&lang=fr%20ca HTTP/1.1\r\n"
            b"Host: x\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/tasks/t1/ui"
        assert request.query == {"worker": "w1", "lang": "fr ca"}
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_json_body(self):
        body = json.dumps({"name": "ann"}).encode()
        request = parse(
            b"POST /workers HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.payload() == {"name": "ann"}

    def test_post_with_form_body(self):
        body = b"region=paris&sns_id="
        request = parse(
            b"POST /workers/w1/factors HTTP/1.1\r\n"
            b"Content-Type: application/x-www-form-urlencoded\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.payload() == {"region": "paris", "sns_id": ""}

    def test_connection_close_honoured(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTT")
        assert excinfo.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET/\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_version(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/2\r\n\r\n")
        assert excinfo.value.status == 501

    def test_transfer_encoding_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 501

    def test_bad_content_length(self):
        for value in (b"nan", b"-5"):
            with pytest.raises(HttpError) as excinfo:
                parse(b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n")
            assert excinfo.value.status == 400

    def test_body_too_large_is_413(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body_bytes=10,
            )
        assert excinfo.value.status == 413

    def test_head_too_large_is_431(self):
        raw = b"GET / HTTP/1.1\r\nX-Pad: " + b"p" * 500 + b"\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw, max_header_bytes=64)
        assert excinfo.value.status == 431

    def test_malformed_json_payload_is_400(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
        )
        with pytest.raises(HttpError) as excinfo:
            request.payload()
        assert excinfo.value.status == 400

    def test_non_object_json_payload_is_400(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]")
        with pytest.raises(HttpError) as excinfo:
            request.payload()
        assert excinfo.value.status == 400


class TestEncodeResponse:
    def test_round_trip(self):
        response = HttpResponse.json({"b": 2, "a": 1}, status=201)
        raw = encode_response(response)

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_response(reader)

        parsed = asyncio.run(go())
        assert parsed.status == 201
        assert parsed.parsed_json() == {"a": 1, "b": 2}
        assert parsed.headers["connection"] == "keep-alive"
        assert parsed.headers["content-length"] == str(len(response.body))

    def test_json_body_is_canonical(self):
        # sort_keys means identical values encode to identical bytes —
        # what the serving-diff oracle's byte-identity leans on.
        one = HttpResponse.json({"b": 2, "a": 1}).body
        two = HttpResponse.json({"a": 1, "b": 2}).body
        assert one == two

    def test_connection_close(self):
        raw = encode_response(HttpResponse.html("<p>hi</p>"), keep_alive=False)
        assert b"Connection: close" in raw

    def test_error_shape(self):
        response = HttpResponse.error(429, "slow down", headers={"Retry-After": "1"})
        assert response.status == 429
        assert response.headers["Retry-After"] == "1"
        assert response.parsed_json() == {"ok": False, "error": "slow down"}
