"""Randomized differential check of the HTTP serving surface.

Concurrent clients fire randomized GET/POST interleavings at a
:class:`PlatformServer` recording its admission journal.  The journal —
``(tick, WriteOp)`` in applied order — is then replayed tick by tick
through :func:`repro.serving.ops.apply_ops` against a fresh platform,
i.e. the same operations issued as direct library calls.  The two
platforms' persisted states must be **byte-identical**: the HTTP decode,
admission ordering, burst coalescing and barrier handling must be
invisible to platform semantics.  Reads interleave throughout and must
not perturb state.

The CI ``serving-diff`` job runs this module with
``SERVING_DIFF_EXAMPLES=12``; the local default keeps tier-1 fast.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import random

import pytest

from repro.core import Crowd4U
from repro.serving import PlatformServer, ServingConfig, WriteOp, apply_ops
from repro.serving.http import HttpClient
from repro.storage import dump_canonical

EXAMPLES = int(os.environ.get("SERVING_DIFF_EXAMPLES", "3"))

pytestmark = pytest.mark.serving_diff

_CYLOG_SOURCE = """
    open rate(item: text, verdict: text) key (item) asking "Rate {item}".
    item("i1"). item("i2"). item("i3").
    rated(I, V) :- item(I), rate(I, V).
"""

_ITEMS = ("i1", "i2", "i3")
_VERDICTS = ("good", "bad", "unsure")


def _build_platform(seed: int) -> tuple[Crowd4U, str]:
    platform = Crowd4U(seed=seed)
    project = platform.register_project("survey", "req", _CYLOG_SOURCE)
    return platform, project.id


def _fingerprint(platform: Crowd4U, project_id: str):
    """Everything that must match: storage bytes, structural summary,
    derived engine facts."""
    snapshot = platform.snapshot()
    snapshot.pop("engine_shards", None)
    return (
        dump_canonical(platform.db),
        repr(sorted(snapshot.items())),
        repr(sorted(platform.processor(project_id).facts("rated"))),
    )


def _random_factors(rng: random.Random) -> dict:
    return {
        "native_languages": [rng.choice(("en", "ja"))],
        "languages": {"fr": rng.choice((0.2, 0.6, 0.9))},
        "region": rng.choice(("tsukuba", "paris")),
        "skills": {"translation": rng.choice((0.3, 0.7))},
        "reliability": rng.choice((0.6, 0.9)),
    }


async def _client_script(
    server: PlatformServer, project_id: str, index: int, rng: random.Random
) -> None:
    """One client's randomized interleaving of reads and writes.

    Error responses (unknown task ids, rejected forms) are part of the
    contract: failed writes are journaled and must fail identically on
    replay.
    """
    my_workers: list[str] = []
    async with HttpClient(*server.address) as client:
        for n in range(rng.randrange(8, 14)):
            op = rng.choice(
                ("worker", "worker", "answer", "answer", "task",
                 "step", "page", "reads", "bad_interest")
            )
            if op == "worker":
                response = await client.request(
                    "POST",
                    "/workers",
                    json_body={
                        "name": f"c{index}w{n}",
                        "factors": _random_factors(rng),
                    },
                )
                body = response.parsed_json()
                if body["ok"]:
                    my_workers.append(body["result"]["worker_id"])
            elif op == "answer":
                await client.request(
                    "POST",
                    f"/projects/{project_id}/answers",
                    json_body={
                        "predicate": "rate",
                        "key_values": {"item": rng.choice(_ITEMS)},
                        "fill_values": {"verdict": rng.choice(_VERDICTS)},
                    },
                )
            elif op == "task":
                await client.request(
                    "POST",
                    f"/projects/{project_id}/tasks",
                    json_body={"instruction": f"adhoc-{index}-{n}"},
                )
            elif op == "step":
                await client.request("POST", "/step", json_body={"dt": 1.0})
            elif op == "page" and my_workers:
                response = await client.request(
                    "GET", f"/workers/{rng.choice(my_workers)}/page"
                )
                assert response.status == 200
            elif op == "reads":
                for path in ("/healthz", "/snapshot", "/stats"):
                    assert (await client.request("GET", path)).status == 200
            elif op == "bad_interest":
                response = await client.request(
                    "POST",
                    f"/tasks/nope{n}/interest",
                    json_body={"worker_id": my_workers[0] if my_workers else "w?"},
                )
                assert response.status in (400, 404, 409)


def _replay(journal: list[tuple[int, WriteOp]], seed: int) -> tuple[Crowd4U, str]:
    """The same operations as direct library calls: one
    :func:`apply_ops` burst per server tick, in journal order."""
    platform, project_id = _build_platform(seed)
    for _, group in itertools.groupby(journal, key=lambda entry: entry[0]):
        apply_ops(platform, [op for _, op in group])
    return platform, project_id


@pytest.mark.parametrize("seed", range(EXAMPLES))
def test_concurrent_http_matches_direct_calls(seed: int) -> None:
    async def go():
        platform, project_id = _build_platform(seed)
        server = PlatformServer(
            platform,
            ServingConfig(batch_window=0.002, max_batch=64),
            record_journal=True,
        )
        async with server:
            await asyncio.gather(
                *(
                    _client_script(
                        server, project_id, i, random.Random(seed * 997 + i)
                    )
                    for i in range(4)
                )
            )
        return platform, project_id, server

    platform, project_id, server = asyncio.run(go())
    assert server.journal, "the interleaving admitted no writes?"
    replayed, replay_project = _replay(server.journal, seed)
    assert _fingerprint(platform, project_id) == _fingerprint(
        replayed, replay_project
    )
    # The batcher must actually have coalesced under concurrency.
    assert server.stats.applied == len(server.journal)
    platform.close()
    replayed.close()


def test_sequential_http_matches_direct_calls() -> None:
    """Deterministic spine: a fixed op sequence over HTTP equals the same
    WriteOps applied directly, op for op (batch_window=0 → one tick each)."""
    script = [
        WriteOp("register_worker", {"name": "ann", "factors": {
            "native_languages": ["en"], "languages": {"fr": 0.8},
            "skills": {"translation": 0.7}, "reliability": 0.9}}),
        WriteOp("register_worker", {"name": "bob", "factors": {
            "native_languages": ["ja"], "languages": {"fr": 0.4},
            "skills": {"translation": 0.3}, "reliability": 0.7}}),
        WriteOp("step", {"dt": 1.0}),
        WriteOp("supply_answer", {"predicate": "rate",
                                  "key_values": {"item": "i1"},
                                  "fill_values": {"verdict": "good"}}),
        WriteOp("post_task", {"instruction": "tidy the corpus"}),
        WriteOp("step", {"dt": 1.0}),
    ]

    async def over_http():
        platform, project_id = _build_platform(11)
        async with PlatformServer(
            platform, ServingConfig(batch_window=0.0)
        ) as server:
            async with HttpClient(*server.address) as client:
                routes = {
                    "register_worker": lambda op: ("/workers", op.payload),
                    "step": lambda op: ("/step", op.payload),
                    "supply_answer": lambda op: (
                        f"/projects/{project_id}/answers", op.payload
                    ),
                    "post_task": lambda op: (
                        f"/projects/{project_id}/tasks", op.payload
                    ),
                }
                for op in script:
                    path, payload = routes[op.kind](op)
                    response = await client.request(
                        "POST", path, json_body=payload
                    )
                    assert response.parsed_json()["ok"], response.body
        return platform, project_id

    http_platform, http_project = asyncio.run(over_http())

    direct_platform, direct_project = _build_platform(11)
    for op in script:
        payload = dict(op.payload)
        if op.kind in ("supply_answer", "post_task"):
            payload["project_id"] = direct_project
        outcomes = apply_ops(direct_platform, [WriteOp(op.kind, payload)])
        assert outcomes[0].ok, outcomes[0].error

    assert _fingerprint(http_platform, http_project) == _fingerprint(
        direct_platform, direct_project
    )
    http_platform.close()
    direct_platform.close()
