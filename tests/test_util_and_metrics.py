"""Utility and metrics helpers."""

import pytest

from repro.metrics import Collector, format_table
from repro.util import IdFactory, clamp, derive_seed, make_rng, slugify, word_wrap


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_derive_seed_varies_with_labels(self):
        seeds = {derive_seed(7), derive_seed(7, "a"), derive_seed(7, "b"),
                 derive_seed(8, "a")}
        assert len(seeds) == 4

    def test_make_rng_streams_independent(self):
        a = make_rng(1, "x")
        b = make_rng(1, "y")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_make_rng_reproducible(self):
        assert make_rng(1, "x").random() == make_rng(1, "x").random()


class TestIds:
    def test_sequence_and_padding(self):
        factory = IdFactory("t", width=3)
        assert [factory.next() for _ in range(3)] == ["t000", "t001", "t002"]

    def test_peek_does_not_advance(self):
        factory = IdFactory("t")
        factory.next()
        assert factory.peek_count() == 1
        assert factory.next() == "t00001"

    def test_width_validated(self):
        with pytest.raises(ValueError):
            IdFactory("t", width=0)


class TestText:
    def test_slugify(self):
        assert slugify("Hello, World! 42") == "hello-world-42"
        assert slugify("---") == ""

    def test_clamp(self):
        assert clamp(5, 0, 1) == 1
        assert clamp(-5, 0, 1) == 0
        assert clamp(0.5, 0, 1) == 0.5
        with pytest.raises(ValueError):
            clamp(1, 2, 0)

    def test_word_wrap(self):
        lines = word_wrap("aa bb cc dd", width=5)
        assert lines == ["aa bb", "cc dd"]

    def test_word_wrap_long_word_gets_own_line(self):
        assert word_wrap("tiny enormousword x", width=6) == [
            "tiny", "enormousword", "x",
        ]

    def test_word_wrap_width_validated(self):
        with pytest.raises(ValueError):
            word_wrap("x", width=0)


class TestCollector:
    def test_counters(self):
        collector = Collector()
        collector.count("tasks")
        collector.count("tasks", 2)
        assert collector.counters["tasks"] == 3

    def test_timers(self):
        collector = Collector()
        with collector.timer("work"):
            pass
        with collector.timer("work"):
            pass
        assert len(collector.timers["work"]) == 2
        assert collector.timer_total("work") >= 0
        assert collector.timer_mean("missing") == 0.0

    def test_series(self):
        collector = Collector()
        collector.record("q", 0.5)
        collector.record("q", 1.0)
        assert collector.series_mean("q") == 0.75

    def test_summary_shape(self):
        collector = Collector()
        collector.count("n")
        with collector.timer("t"):
            pass
        collector.record("s", 2.0)
        summary = collector.summary()
        assert summary["n"] == 1
        assert "t_total_s" in summary and "s_mean" in summary


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(("name", "value"), [("a", 1.23456), ("bb", 7)],
                             float_digits=2)
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in table and "7" in table

    def test_title_underlined(self):
        table = format_table(("x",), [(1,)], title="T")
        assert table.splitlines()[0] == "T"
        assert table.splitlines()[1] == "="

    def test_bools_rendered_as_words(self):
        assert "yes" in format_table(("x",), [(True,)])

    def test_stats_table_surfaces_replica_telemetry(self):
        """The engine's replica-transport counters must reach bench
        reports through the generic counters table."""
        from repro.cylog.engine import EngineStats
        from repro.metrics import format_stats_table

        table = format_stats_table({"cylog_engine": EngineStats().as_dict()})
        for counter in (
            "sync_rows",
            "sync_bytes",
            "replica_backfills",
            "shared_mem_remaps",
            "write_replans",
        ):
            assert counter in table, counter
