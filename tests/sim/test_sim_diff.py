"""Randomized differential check: delta-stream driver vs snapshot oracle.

Two identical platforms replay the *same* randomized scenario — streamed
facts, retraction storms, answer revocations, mid-run worker arrivals
and attrition — one driven by the delta-mode :class:`SimulationDriver`
(riding the platform's round-delta feed and event stream), the other by
snapshot mode (full scans every tick).  After every tick the two
platforms' persisted state must be **byte-identical**
(:func:`dump_canonical`, which includes storage version counters — the
delta driver must perform the same mutations, not merely converge to the
same rows) and the drivers' reports must be equal.

The CI ``sim-diff`` job runs this module with ``SIM_DIFF_EXAMPLES=12``;
the local default keeps the tier-1 suite fast.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.apps import (
    run_disaster_pack,
    run_moderation_pack,
    run_multilingual_pack,
)
from repro.core import Crowd4U, SkillRequirement, TeamConstraints
from repro.core.projects import SchemeKind
from repro.sim import BehaviorConfig, BehaviorModel, SimulationDriver, populate
from repro.storage.persistence import dump_canonical

EXAMPLES = int(os.environ.get("SIM_DIFF_EXAMPLES", "3"))

pytestmark = pytest.mark.sim_diff

_CYLOG = """
open label(item: text, tag: text) key (item) asking "Label item {item}".
item("seed-a"). item("seed-b").
labelled(I, T) :- item(I), label(I, T).
eligible(W) :- worker_skill(W, "observation", L), L >= 0.05.
"""

_SCHEMES = (SchemeKind.SEQUENTIAL, SchemeKind.SIMULTANEOUS, SchemeKind.HYBRID)


def _build(seed: int, scheme: SchemeKind, n_workers: int) -> Crowd4U:
    platform = Crowd4U(seed=seed)
    populate(platform, n_workers, seed=seed)
    platform.register_project(
        name="labelling",
        requester="oracle",
        cylog_source=_CYLOG,
        scheme=scheme,
        constraints=TeamConstraints(
            min_size=1,
            critical_mass=3,
            skills=(SkillRequirement("observation", 0.2, aggregator="max"),),
            confirmation_window=12.0,
        ),
    )
    return platform


def _driver(platform: Crowd4U, seed: int, delta: bool) -> SimulationDriver:
    return SimulationDriver(
        platform,
        behavior=BehaviorModel(BehaviorConfig(base_interest=0.25), seed=seed),
        seed=seed,
        delta=delta,
        revisit_period=6.0,
    )


@pytest.mark.parametrize("seed", range(EXAMPLES))
def test_delta_driver_matches_snapshot_oracle(seed: int) -> None:
    scheme = _SCHEMES[seed % len(_SCHEMES)]
    n_workers = 18 + 4 * (seed % 3)
    platforms = (_build(seed, scheme, n_workers), _build(seed, scheme, n_workers))
    drivers = (
        _driver(platforms[0], seed, delta=True),
        _driver(platforms[1], seed, delta=False),
    )
    rng = random.Random(5000 + seed)
    items: list[str] = ["seed-a", "seed-b"]
    next_item = [0]
    next_worker = [n_workers]

    def project_id(platform: Crowd4U) -> str:
        (project,) = platform.projects.active()
        return project.id

    for tick in range(24):
        # One randomized injection bundle, applied identically to both.
        if rng.random() < 0.8:
            fresh = [f"item-{next_item[0] + i}" for i in range(rng.randint(1, 3))]
            next_item[0] += len(fresh)
            items.extend(fresh)
            for platform in platforms:
                platform.processor(project_id(platform)).add_facts(
                    "item", [(item,) for item in fresh]
                )
        if rng.random() < 0.25 and items:
            # Retraction storm over a random slice of the stream.
            storm = rng.sample(items, min(len(items), rng.randint(1, 4)))
            for platform in platforms:
                platform.processor(project_id(platform)).retract_facts(
                    "item", [(item,) for item in storm]
                )
        if rng.random() < 0.2:
            # Probe BOTH platforms: facts() evaluates a dirty processor, so
            # a one-sided probe would itself perturb the comparison.
            answered_pair = [
                sorted(platform.processor(project_id(platform)).facts("labelled"))
                for platform in platforms
            ]
            assert answered_pair[0] == answered_pair[1]
            if answered_pair[0]:
                key = rng.choice(answered_pair[0])[0]
                for platform in platforms:
                    platform.processor(project_id(platform)).revoke_answer(
                        "label", (key,)
                    )
        if rng.random() < 0.2:
            from repro.sim import generate_factors

            index = next_worker[0]
            next_worker[0] += 1
            for platform in platforms:
                platform.register_worker(
                    f"worker{index:04d}", generate_factors(seed, index)
                )
        if rng.random() < 0.15:
            active = sorted(
                set(w.id for w in platforms[0].workers.all())
                - set(drivers[0].inactive_workers)
            )
            if active:
                departed = rng.choice(active)
                for driver in drivers:
                    driver.deactivate_worker(departed)
        for driver in drivers:
            driver.tick()
        assert dump_canonical(platforms[0].db) == dump_canonical(platforms[1].db), (
            f"state diverged at tick {tick} (seed {seed}, {scheme})"
        )
    assert drivers[0].report == drivers[1].report
    assert platforms[0].snapshot() == platforms[1].snapshot()


@pytest.mark.parametrize(
    "run_pack",
    [run_moderation_pack, run_disaster_pack, run_multilingual_pack],
    ids=["moderation", "disaster", "multilingual"],
)
def test_scenario_packs_match_snapshot_oracle(run_pack) -> None:
    """Each E15 pack replays byte-identically in snapshot mode."""
    delta = run_pack(n_workers=40, ticks=16, seed=2, delta=True)
    snapshot = run_pack(n_workers=40, ticks=16, seed=2, delta=False)
    assert delta.report == snapshot.report
    assert delta.facts == snapshot.facts
    assert dump_canonical(delta.platform.db) == dump_canonical(snapshot.platform.db)
