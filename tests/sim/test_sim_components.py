"""Simulated-crowd components: population, behaviour, outcomes, skills."""

import pytest

from repro.core.affinity import AffinityMatrix
from repro.core.tasks import TaskKind, TaskPool
from repro.errors import SimulationError
from repro.sim import (
    BehaviorModel,
    BetaSkillEstimator,
    OutcomeModel,
    PopulationConfig,
    VirtualClock,
    generate_factors,
)
from repro.storage import Database
from tests.conftest import make_worker


class TestClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_backwards_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance(0)


class TestPopulation:
    def test_deterministic_per_seed_and_index(self):
        assert generate_factors(7, 3) == generate_factors(7, 3)
        assert generate_factors(7, 3) != generate_factors(7, 4)
        assert generate_factors(8, 3) != generate_factors(7, 3)

    def test_factors_within_bounds(self):
        config = PopulationConfig()
        for index in range(50):
            factors = generate_factors(1, index, config)
            assert len(factors.native_languages) == 1
            assert all(0 <= p <= 1 for p in factors.languages.values())
            assert all(0 <= s <= 1 for s in factors.skills.values())
            assert config.min_reliability <= factors.reliability <= 1.0
            assert factors.region in config.regions
            assert factors.coordinates == config.regions[factors.region]

    def test_volunteer_fraction_respected(self):
        config = PopulationConfig(volunteer_fraction=1.0)
        assert all(
            generate_factors(2, i, config).cost == 0.0 for i in range(20)
        )


class TestBehavior:
    def _task(self, **kwargs):
        pool = TaskPool(Database())
        base = dict(project_id="p", kind=TaskKind.OPEN_FILL, instruction="do")
        base.update(kwargs)
        return pool.create(**base)

    def test_interest_deterministic(self):
        model = BehaviorModel(seed=1)
        worker = make_worker("w1")
        task = self._task()
        assert model.wants_task(worker, task) == model.wants_task(worker, task)

    def test_interest_varies_across_visits(self):
        model = BehaviorModel(seed=1)
        worker = make_worker("w1", skill=0.0)
        task = self._task()
        outcomes = {model.wants_task(worker, task, visit) for visit in range(30)}
        assert outcomes == {True, False}  # revisits eventually differ

    def test_sns_task_answer(self):
        model = BehaviorModel(seed=1)
        worker = make_worker("w1")
        task = self._task(kind=TaskKind.SOLICIT_SNS, assignee="w1")
        result = model.produce_result(worker, task)
        assert "sns_id" in result

    def test_choice_task_answer_from_choices(self):
        model = BehaviorModel(seed=1)
        worker = make_worker("w1")
        task = self._task(choices=(True, False), assignee="w1")
        result = model.produce_result(worker, task)
        assert result["answer"] in (True, False)

    def test_review_improves_text(self):
        model = BehaviorModel(seed=1)
        worker = make_worker("w1", skill=0.9)
        task = self._task(kind=TaskKind.REVIEW, assignee="w1",
                          payload={"previous_text": "base"})
        result = model.produce_result(worker, task)
        assert result["text"].startswith("base")

    def test_quality_tracks_skill(self):
        model = BehaviorModel(seed=1)
        strong = sum(
            model.answer_quality(make_worker(f"s{i}", skill=0.9), "translation")
            for i in range(30)
        )
        weak = sum(
            model.answer_quality(make_worker(f"v{i}", skill=0.1), "translation")
            for i in range(30)
        )
        assert strong > weak


class TestOutcomeModel:
    def _team(self, n, skill=0.6):
        return [make_worker(f"w{i}", skill=skill) for i in range(n)]

    def _affinity(self, team, value):
        matrix = AffinityMatrix()
        for i, a in enumerate(team):
            for b in team[i + 1:]:
                matrix.set(a.id, b.id, value)
        return matrix

    def test_affinity_synergy_helps(self):
        model = OutcomeModel(seed=0)
        team = self._team(3)
        high = model.quality(team, self._affinity(team, 0.9),
                             ["translation"], critical_mass=5)
        low = model.quality(team, self._affinity(team, 0.0),
                            ["translation"], critical_mass=5)
        assert high > low

    def test_critical_mass_degradation(self):
        model = OutcomeModel(seed=0)
        base_quality = []
        for size in (3, 6, 9):
            team = self._team(size, skill=0.3)
            quality = model.quality(
                team, self._affinity(team, 0.5), ["translation"],
                critical_mass=3,
            )
            base_quality.append(quality)
        assert base_quality[0] > base_quality[1] > base_quality[2]

    def test_quality_bounded(self):
        model = OutcomeModel(seed=0)
        team = self._team(4, skill=1.0)
        quality = model.quality(team, self._affinity(team, 1.0),
                                ["translation"], critical_mass=8)
        assert 0.0 <= quality <= 1.0

    def test_deterministic_given_inputs(self):
        model = OutcomeModel(seed=3)
        team = self._team(3)
        affinity = self._affinity(team, 0.4)
        first = model.quality(team, affinity, ["translation"], 5)
        second = model.quality(team, affinity, ["translation"], 5)
        assert first == second


class TestSkillEstimation:
    def test_prior_is_half(self):
        estimator = BetaSkillEstimator()
        assert estimator.estimate("w", "x") == pytest.approx(0.5)

    def test_good_outcomes_raise_estimate(self):
        estimator = BetaSkillEstimator()
        for _ in range(10):
            estimator.observe_team_outcome(["a", "b"], "t", 0.95)
        assert estimator.estimate("a", "t") > 0.8
        assert estimator.estimate("b", "t") > 0.8

    def test_contribution_share_weights_credit(self):
        estimator = BetaSkillEstimator()
        for _ in range(10):
            estimator.observe_team_outcome(
                ["busy", "idle"], "t", 0.9, contributions={"busy": 9, "idle": 1},
            )
        assert estimator.confidence("busy", "t") > estimator.confidence("idle", "t")

    def test_individual_observation(self):
        estimator = BetaSkillEstimator()
        estimator.observe_individual("w", "t", 0.0)
        assert estimator.estimate("w", "t") < 0.5

    def test_snapshot_and_known_workers(self):
        estimator = BetaSkillEstimator()
        estimator.observe_individual("w", "t", 1.0)
        assert estimator.known_workers() == {"w"}
        assert ("w", "t") in estimator.snapshot()

    def test_empty_team_noop(self):
        estimator = BetaSkillEstimator()
        estimator.observe_team_outcome([], "t", 1.0)
        assert estimator.known_workers() == set()
