"""Distribution sampling for ``sim.population``: Zipf skew and churn."""

from __future__ import annotations

import pytest

from repro.sim import (
    ChurnConfig,
    ChurnProcess,
    PopulationConfig,
    generate_factors,
    zipf_weights,
)


class TestZipfWeights:
    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert weights == [0.25, 0.25, 0.25, 0.25]

    def test_weights_normalise_and_decay(self):
        weights = zipf_weights(6, 1.2)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_higher_exponent_concentrates_head(self):
        mild = zipf_weights(10, 0.5)
        steep = zipf_weights(10, 2.0)
        assert steep[0] > mild[0]
        assert steep[-1] < mild[-1]

    def test_degenerate_sizes(self):
        assert zipf_weights(0, 1.0) == []
        assert zipf_weights(-3, 1.0) == []
        assert zipf_weights(1, 3.0) == [1.0]

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestSkewedGeneration:
    def test_seeded_determinism(self):
        config = PopulationConfig(language_skew=1.1, region_skew=0.7)
        a = [generate_factors(9, i, config) for i in range(20)]
        b = [generate_factors(9, i, config) for i in range(20)]
        assert a == b

    def test_zero_skew_matches_default_config(self):
        """skew=0 must take the historical rng path bit-for-bit."""
        explicit = PopulationConfig(language_skew=0.0, region_skew=0.0)
        for i in range(15):
            assert generate_factors(4, i, explicit) == generate_factors(4, i)

    def test_language_skew_concentrates_first_language(self):
        config = PopulationConfig(language_skew=2.5)
        natives = [
            next(iter(generate_factors(2, i, config).native_languages))
            for i in range(120)
        ]
        head = config.languages[0]
        head_share = natives.count(head) / len(natives)
        assert head_share > 0.5  # zipf(5, 2.5) gives the head ~84%

    def test_region_skew_concentrates_first_region(self):
        config = PopulationConfig(region_skew=2.5)
        regions = [generate_factors(3, i, config).region for i in range(120)]
        head = sorted(config.regions)[0]
        assert regions.count(head) / len(regions) > 0.5


class TestChurnConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(arrival_rate=-1.0)
        with pytest.raises(ValueError):
            ChurnConfig(departure_rate=1.5)
        with pytest.raises(ValueError):
            ChurnConfig(burst_levels=0)

    def test_defaults_are_quiet(self):
        process = ChurnProcess(0)
        assert process.arrivals(3) == 0
        assert process.departures(3, ["w1", "w2"]) == []


class TestChurnProcess:
    def test_seeded_and_call_order_independent(self):
        config = ChurnConfig(arrival_rate=2.0, departure_rate=0.3)
        a = ChurnProcess(7, config)
        b = ChurnProcess(7, config)
        # Query b's ticks in reverse: draws key on the tick, not call order.
        forward = [
            (a.arrivals(t), a.departures(t, ["w1", "w2", "w3"])) for t in range(6)
        ]
        backward = [
            (b.arrivals(t), b.departures(t, ["w1", "w2", "w3"]))
            for t in reversed(range(6))
        ]
        assert forward == list(reversed(backward))

    def test_zero_workers_edge(self):
        process = ChurnProcess(1, ChurnConfig(departure_rate=0.9))
        assert process.departures(5, []) == []

    def test_single_cohort(self):
        process = ChurnProcess(1, ChurnConfig(departure_rate=0.5))
        for tick in range(10):
            departed = process.departures(tick, ["only-worker"])
            assert departed in ([], ["only-worker"])

    def test_all_churned_tick(self):
        process = ChurnProcess(2, ChurnConfig(departure_rate=1.0))
        roster = [f"w{i}" for i in range(9, -1, -1)]  # unsorted on purpose
        assert process.departures(0, roster) == sorted(roster)

    def test_departures_bounded_by_roster(self):
        process = ChurnProcess(3, ChurnConfig(departure_rate=0.95))
        roster = ["w1", "w2", "w3"]
        for tick in range(20):
            departed = process.departures(tick, roster)
            assert len(departed) <= len(roster)
            assert set(departed) <= set(roster)

    def test_burst_skew_raises_arrival_mass(self):
        calm = ChurnProcess(5, ChurnConfig(arrival_rate=2.0))
        bursty = ChurnProcess(
            5,
            ChurnConfig(arrival_rate=2.0, arrival_burst_skew=1.0, burst_levels=8),
        )
        calm_total = sum(calm.arrivals(t) for t in range(80))
        bursty_total = sum(bursty.arrivals(t) for t in range(80))
        assert bursty_total > calm_total

    def test_large_rate_uses_normal_approximation(self):
        process = ChurnProcess(6, ChurnConfig(arrival_rate=200.0))
        draws = [process.arrivals(t) for t in range(12)]
        assert all(d >= 0 for d in draws)
        mean = sum(draws) / len(draws)
        assert 120 < mean < 280  # loose: right order of magnitude
