"""The simulation driver's platform-level behaviour."""


from repro.apps.common import build_crowd
from repro.core import SkillRequirement, TeamConstraints
from repro.core.projects import SchemeKind
from repro.sim import SimulationDriver

SOURCE = """
    open label(item: text, tag: text) key (item) asking "Label {item}".
    item("a"). item("b").
    labelled(I, T) :- item(I), label(I, T).
"""


def _project(platform, **constraint_kwargs):
    base = dict(min_size=2, critical_mass=3, confirmation_window=20.0)
    base.update(constraint_kwargs)
    return platform.register_project(
        "labels", "req", SOURCE,
        scheme=SchemeKind.SEQUENTIAL,
        constraints=TeamConstraints(**base),
    )


class TestDriver:
    def test_runs_to_quiescence(self):
        platform = build_crowd(20, seed=3)
        project = _project(platform)
        driver = SimulationDriver(platform, seed=3)
        report = driver.run(max_steps=250)
        assert report.quiescent
        assert report.team_results == 2
        assert platform.processor(project.id).is_quiescent()

    def test_report_counters_consistent(self):
        platform = build_crowd(20, seed=3)
        _project(platform)
        driver = SimulationDriver(platform, seed=3)
        report = driver.run(max_steps=250)
        assert report.micro_completed >= report.team_results
        assert report.interest_declared >= 2 * report.team_results
        assert len(report.qualities) == report.team_results
        assert 0.0 <= report.mean_quality <= 1.0

    def test_auto_relax_resolves_impossible_constraints(self):
        platform = build_crowd(20, seed=4)
        _project(
            platform,
            skills=(SkillRequirement("translation", 0.99, aggregator="max"),),
        )
        driver = SimulationDriver(platform, seed=4, auto_relax=True)
        report = driver.run(max_steps=300)
        assert report.relaxations_applied >= 1
        assert report.quiescent

    def test_without_auto_relax_suggestions_accumulate(self):
        platform = build_crowd(20, seed=4)
        project = _project(
            platform,
            skills=(SkillRequirement("translation", 0.99, aggregator="max"),),
        )
        driver = SimulationDriver(platform, seed=4, auto_relax=False)
        driver.run(max_steps=40)
        assert platform.suggestions_for(project.id)

    def test_skills_learned_from_outcomes(self):
        platform = build_crowd(20, seed=3)
        _project(platform, skills=(SkillRequirement("translation", 0.2),))
        driver = SimulationDriver(platform, seed=3)
        driver.run(max_steps=250)
        assert driver.skills.known_workers()

    def test_deterministic_given_seed(self):
        def run():
            platform = build_crowd(16, seed=9)
            _project(platform)
            driver = SimulationDriver(platform, seed=9)
            report = driver.run(max_steps=250)
            return (report.team_results, report.micro_completed,
                    tuple(round(q, 6) for q in report.qualities))

        assert run() == run()
