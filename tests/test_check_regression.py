"""Unit tests for the bench-regression gate script.

The script is loaded by file path (it is a CLI, not a package module)
and pointed at a temporary repo root so the tests control every record
it reads: committed trajectories, fresh smoke records and the committed
smoke baselines.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


@pytest.fixture()
def gate(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location(
        "check_regression_under_test", _SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(module, "BASELINE_PATH", tmp_path / "smoke_speedups.json")
    monkeypatch.setattr(module, "GATED_METRICS", {"EX": ("speedup",)})
    monkeypatch.setattr(module, "CONTEXT_METRICS", {})
    return module


def _write(path: Path, record: dict) -> None:
    path.write_text(json.dumps(record), encoding="utf-8")


def _arrange(gate, *, baseline=None, trajectory=None, smoke=None) -> None:
    root = gate.REPO_ROOT
    if baseline is not None:
        _write(gate.BASELINE_PATH, baseline)
    if trajectory is not None:
        _write(root / "BENCH_EX.json", trajectory)
    if smoke is not None:
        _write(root / "BENCH_EX.smoke.json", smoke)


class TestGate:
    def test_passes_when_smoke_meets_floor(self, gate, capsys):
        _arrange(
            gate,
            baseline={"EX": {"speedup": 10.0}},
            trajectory={"speedup": 60.0},
            smoke={"fast_mode": True, "speedup": 9.0},
        )
        assert gate.main([]) == 0
        assert "[ok] EX.speedup" in capsys.readouterr().out

    def test_fails_on_regression(self, gate, capsys):
        _arrange(
            gate,
            baseline={"EX": {"speedup": 10.0}},
            trajectory={"speedup": 60.0},
            smoke={"fast_mode": True, "speedup": 5.0},  # floor is 7.0 at 30%
        )
        assert gate.main([]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_fails_when_smoke_record_missing(self, gate):
        _arrange(
            gate,
            baseline={"EX": {"speedup": 10.0}},
            trajectory={"speedup": 60.0},
        )
        assert gate.main([]) == 1

    def test_fails_when_trajectory_missing(self, gate):
        _arrange(
            gate,
            baseline={"EX": {"speedup": 10.0}},
            smoke={"fast_mode": True, "speedup": 9.0},
        )
        assert gate.main([]) == 1


class TestOrphanBaselines:
    def test_orphan_scenario_fails_loudly(self, gate, capsys):
        """A baseline whose scenario left GATED_METRICS must fail, not skip."""
        _arrange(
            gate,
            baseline={
                "EX": {"speedup": 10.0},
                "GONE": {"speedup": 4.0},  # no gated scenario, no BENCH_GONE.json
            },
            trajectory={"speedup": 60.0},
            smoke={"fast_mode": True, "speedup": 9.0},
        )
        assert gate.main([]) == 1
        out = capsys.readouterr().out
        assert "GONE" in out
        assert "matches no gated scenario" in out

    def test_orphan_key_fails_loudly(self, gate, capsys):
        _arrange(
            gate,
            baseline={"EX": {"speedup": 10.0, "old_ratio": 2.0}},
            trajectory={"speedup": 60.0},
            smoke={"fast_mode": True, "speedup": 9.0},
        )
        assert gate.main([]) == 1
        out = capsys.readouterr().out
        assert "EX.old_ratio" in out
        assert "not a gated metric" in out


class TestUpdate:
    def test_update_keeps_min_of_old_and_fresh(self, gate):
        _arrange(
            gate,
            baseline={"EX": {"speedup": 8.0}},
            smoke={"fast_mode": True, "speedup": 11.0},
        )
        assert gate.main(["--update"]) == 0
        written = json.loads(gate.BASELINE_PATH.read_text())
        assert written["EX"]["speedup"] == 8.0  # min(old, fresh)

    def test_reset_takes_fresh_value(self, gate):
        _arrange(
            gate,
            baseline={"EX": {"speedup": 8.0}},
            smoke={"fast_mode": True, "speedup": 11.0},
        )
        assert gate.main(["--update", "--reset"]) == 0
        written = json.loads(gate.BASELINE_PATH.read_text())
        assert written["EX"]["speedup"] == 11.0
