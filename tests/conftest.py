"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.affinity import AffinityMatrix
from repro.core.human_factors import HumanFactors
from repro.core.workers import Worker, WorkerManager
from repro.storage import Column, ColumnType, Database, TableSchema


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def worker_table_schema() -> TableSchema:
    return TableSchema(
        "people",
        [
            Column("id", ColumnType.TEXT),
            Column("age", ColumnType.INT),
            Column("score", ColumnType.FLOAT, nullable=True),
            Column("active", ColumnType.BOOL, default=True),
        ],
        primary_key=("id",),
    )


def make_worker(
    worker_id: str,
    skill: float = 0.5,
    region: str = "tsukuba",
    languages: dict[str, float] | None = None,
    cost: float = 0.0,
    reliability: float = 0.9,
    skill_name: str = "translation",
) -> Worker:
    """Convenience constructor used across core tests."""
    return Worker(
        id=worker_id,
        name=f"name-{worker_id}",
        factors=HumanFactors(
            native_languages=frozenset({"en"}),
            languages=languages or {"fr": 0.5},
            region=region,
            skills={skill_name: skill},
            reliability=reliability,
            cost=cost,
        ),
    )


@pytest.fixture
def five_workers() -> list[Worker]:
    return [
        make_worker("w1", skill=0.9, region="tsukuba"),
        make_worker("w2", skill=0.8, region="tsukuba"),
        make_worker("w3", skill=0.7, region="paris"),
        make_worker("w4", skill=0.4, region="paris"),
        make_worker("w5", skill=0.2, region="dallas"),
    ]


@pytest.fixture
def uniform_affinity(five_workers) -> AffinityMatrix:
    """Affinity favouring same-region pairs: 0.9 same region, 0.1 otherwise."""
    matrix = AffinityMatrix()
    for i, a in enumerate(five_workers):
        for b in five_workers[i + 1:]:
            same = a.factors.region == b.factors.region
            matrix.set(a.id, b.id, 0.9 if same else 0.1)
    return matrix


@pytest.fixture
def worker_manager(db) -> WorkerManager:
    return WorkerManager(db)
