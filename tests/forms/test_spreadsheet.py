"""Requester tools: CyLog generation from forms and spreadsheets."""

import pytest

from repro.cylog import CyLogProcessor
from repro.errors import FormError
from repro.forms.spreadsheet import (
    AskColumn,
    FormTaskSpec,
    cylog_from_form_spec,
    cylog_from_spreadsheet,
)


class TestFormSpec:
    def test_generated_program_runs(self):
        source = cylog_from_form_spec(FormTaskSpec(
            name="sentiment",
            question="What is the sentiment of {item}?",
            items=("great product", "awful service"),
            answer_type="text",
            choices=("positive", "negative"),
            eligibility='worker_native(W, "en")',
        ))
        processor = CyLogProcessor(source)
        pending = processor.pending_requests()
        assert len(pending) == 2
        processor.supply_answer(pending[0], {"answer": "positive"})
        assert len(processor.facts("sentiment_result")) == 1

    def test_eligibility_rule_included(self):
        source = cylog_from_form_spec(FormTaskSpec(
            name="t", question="q", items=("a",),
            eligibility='worker_region(W, "paris")',
        ))
        assert 'eligible(W) :- worker(W), worker_region(W, "paris").' in source

    def test_no_items_rejected(self):
        with pytest.raises(FormError):
            FormTaskSpec(name="t", question="q", items=())

    def test_bad_answer_type_rejected(self):
        with pytest.raises(FormError):
            FormTaskSpec(name="t", question="q", items=("a",),
                         answer_type="complex")

    def test_names_sanitised(self):
        source = cylog_from_form_spec(FormTaskSpec(
            name="My Task!", question="q", items=("a",),
        ))
        assert "open my_task(" in source


class TestSpreadsheet:
    ROWS = [
        {"id": "r1", "city": "tsukuba", "note": "flood"},
        {"id": "r2", "city": "paris", "note": "strike"},
    ]

    def test_facts_generated_per_column(self):
        source = cylog_from_spreadsheet(
            self.ROWS, key_column="id",
            ask=[AskColumn("credible", "Credible: {item}?")],
        )
        assert 'row("r1").' in source
        assert 'city("r1", "tsukuba").' in source
        assert 'note("r2", "strike").' in source

    def test_ask_columns_become_open_predicates(self):
        source = cylog_from_spreadsheet(
            self.ROWS, key_column="id",
            ask=[AskColumn("credible", "Credible: {item}?", "bool",
                           choices=(True, False))],
        )
        processor = CyLogProcessor(source)
        pending = processor.pending_requests()
        assert {r.key_values[0] for r in pending} == {"r1", "r2"}
        processor.supply_answer(pending[0], {"answer": True})
        assert len(processor.facts("answered_credible")) == 1

    def test_empty_rows_rejected(self):
        with pytest.raises(FormError):
            cylog_from_spreadsheet([], key_column="id",
                                   ask=[AskColumn("x", "q")])

    def test_missing_key_column_rejected(self):
        with pytest.raises(FormError):
            cylog_from_spreadsheet([{"a": 1}], key_column="id",
                                   ask=[AskColumn("x", "q")])

    def test_no_ask_columns_rejected(self):
        with pytest.raises(FormError):
            cylog_from_spreadsheet(self.ROWS, key_column="id", ask=[])

    def test_numeric_cells_rendered_as_constants(self):
        rows = [{"id": "r1", "count": 4, "ratio": 0.5}]
        source = cylog_from_spreadsheet(
            rows, key_column="id", ask=[AskColumn("verify", "q")],
        )
        assert 'count("r1", 4).' in source
        assert 'ratio("r1", 0.5).' in source
