"""The three figure pages: admin (3), worker (4), task UI / joint (5)."""

import math

import pytest

from repro.core import Crowd4U, HumanFactors, SkillRequirement, TeamConstraints
from repro.core.projects import SchemeKind
from repro.core.tasks import TaskKind
from repro.errors import FormError
from repro.forms import (
    build_constraint_form,
    parse_constraint_form,
    render_admin_page,
    render_task_ui,
    render_worker_page,
)
from repro.forms.worker_page import parse_factors_form


@pytest.fixture
def platform():
    crowd = Crowd4U(seed=2)
    for i in range(4):
        crowd.register_worker(
            f"w{i}",
            HumanFactors(
                native_languages=frozenset({"en"}),
                languages={"fr": 0.7},
                region="tsukuba",
                skills={"reporting": 0.8},
                reliability=0.9,
                sns_id=f"w{i}@sns",
            ),
        )
    return crowd


@pytest.fixture
def project(platform):
    return platform.register_project(
        "news", "req",
        "open report(topic: text, article: text) key (topic).\n"
        'topic("rain"). published(T, A) :- topic(T), report(T, A).',
        scheme=SchemeKind.SIMULTANEOUS,
        constraints=TeamConstraints(
            min_size=2, critical_mass=3,
            skills=(SkillRequirement("reporting", 0.5),),
            required_languages=frozenset({"fr"}),
        ),
    )


class TestConstraintForm:
    def test_form_prefilled_from_constraints(self, project):
        form = build_constraint_form(project.constraints)
        defaults = form.defaults()
        assert defaults["min_size"] == 2
        assert defaults["critical_mass"] == 3
        assert defaults["skills"] == "reporting:0.5:max"
        assert defaults["required_languages"] == "fr"

    def test_round_trip_via_submission(self, project):
        form = build_constraint_form(project.constraints)
        submission = {k: v for k, v in form.defaults().items() if v is not None}
        parsed = parse_constraint_form(submission)
        assert parsed.min_size == 2
        assert parsed.skills == project.constraints.skills
        assert parsed.required_languages == frozenset({"fr"})
        assert parsed.cost_budget == math.inf

    def test_bad_submission_reports_fields(self):
        with pytest.raises(FormError, match="min_size"):
            parse_constraint_form({"min_size": "zero", "critical_mass": 3})

    def test_bad_skill_entry(self):
        with pytest.raises(FormError, match="skill entry"):
            parse_constraint_form(
                {"min_size": 1, "critical_mass": 2, "skills": "nocolon"}
            )


class TestAdminPage:
    def test_contains_form_suggestions_tasks_source(self, platform, project):
        platform.step()
        html = render_admin_page(platform, project.id)
        assert "Desired human factors" in html
        assert "task000000" in html
        assert "open report" in html
        assert "No suggestions" in html

    def test_shows_suggestions_when_infeasible(self, platform):
        project = platform.register_project(
            "hard", "req",
            'open f(k: text, v: text) key (k).\nseed("x").\n'
            "out(K, V) :- seed(K), f(K, V).",
            constraints=TeamConstraints(
                min_size=2, critical_mass=2,
                skills=(SkillRequirement("alchemy", 0.99),),
            ),
        )
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        for worker_id in platform.ledger.eligible_workers(task.id)[:2]:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        html = render_admin_page(platform, project.id)
        assert "Suggestions" in html and "alchemy" in html


class TestWorkerPage:
    def test_shows_factors_and_eligible_tasks(self, platform, project):
        platform.step()
        html = render_worker_page(platform, "w00000")
        assert "Worker page" in html
        assert "skill:reporting" in html
        assert "task000000" in html  # eligible task listed

    def test_render_reports_cache_stats(self, platform, project):
        from repro.storage.cache import CacheStats

        platform.step()
        stats = CacheStats()
        render_worker_page(platform, "w00000", cache_stats=stats)
        assert stats.fetches > 0
        assert stats.hits == 0, "cold render must be all misses"
        warm = CacheStats()
        html = render_worker_page(platform, "w00000", cache_stats=warm)
        assert warm.hits > 0 and warm.misses == 0
        assert html == render_worker_page(platform, "w00000")
        # The caller-supplied block is an attribution slice, not a
        # replacement: the database-wide totals keep counting too.
        assert platform.db.query_cache.stats.hits >= warm.hits

    def test_render_without_stats_unchanged(self, platform, project):
        platform.step()
        assert "Worker page" in render_worker_page(platform, "w00000")

    def test_factors_form_round_trip(self, platform):
        worker = platform.workers.get("w00000")
        updated = parse_factors_form(
            {
                "native_languages": "ja",
                "languages": "en:0.9; de:0.3",
                "region": "tokyo",
                "sns_id": "new@sns",
            },
            worker.factors,
        )
        assert updated.native_languages == frozenset({"ja"})
        assert updated.languages["de"] == 0.3
        assert updated.region == "tokyo"
        assert updated.sns_id == "new@sns"


class TestTaskUI:
    def test_open_fill_ui_has_answer_fields(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        html = render_task_ui(platform, task.id, "w00000")
        assert "article" in html  # the fill column becomes a field

    def test_review_ui_shows_previous_text(self, platform, project):
        root = platform.pool.pending_root_tasks(project.id)[0]
        micro = platform.pool.create(
            project.id, TaskKind.REVIEW, "check it",
            assignee="w00000", parent_task_id=root.id,
            payload={"previous_text": "draft to check"},
        )
        html = render_task_ui(platform, micro.id, "w00000")
        assert "draft to check" in html
        assert "improved version" in html

    def test_joint_ui_reproduces_figure5(self, platform, project):
        platform.step()
        task = platform.pool.pending_root_tasks(project.id)[0]
        for worker_id in platform.ledger.eligible_workers(task.id)[:2]:
            platform.declare_interest(worker_id, task.id)
        platform.step()
        team = platform.teams.get(platform.pool.get(task.id).team_id)
        for member in team.members:
            platform.confirm_membership(member, task.id)
        for member in team.members:
            for micro in platform.tasks_for_worker(member):
                platform.submit_micro_result(
                    micro.id, member, {"sns_id": f"{member}@sns"}
                )
        platform.contribute(task.id, team.members[0], "my paragraph")
        joint = [
            t for t in platform.tasks_for_worker(team.members[0])
            if t.kind is TaskKind.JOINT
        ][0]
        html = render_task_ui(platform, joint.id, team.members[0])
        assert "Simultaneous collaboration" in html
        assert f"{team.members[0]}@sns" in html       # SNS roster
        assert "my paragraph" in html                  # live shared document
        assert "Submit for the team" in html           # single submission
