"""Form model validation and HTML rendering."""

import pytest

from repro.errors import FormError
from repro.forms.model import FormField, FormModel
from repro.forms.render import html_escape, render_field, render_form, render_table


def _form():
    return FormModel(
        form_id="f1",
        title="Test form",
        fields=(
            FormField("name", "Name", required=True),
            FormField("age", "Age", widget="integer", min_value=0, max_value=120),
            FormField("bio", "Bio", widget="textarea"),
            FormField("ok", "OK?", widget="checkbox", default=False),
            FormField("lang", "Language", widget="select",
                      options=("en", "fr")),
            FormField("tags", "Tags", widget="multiselect",
                      options=("a", "b", "c")),
        ),
    )


class TestValidation:
    def test_valid_submission(self):
        report = _form().validate({
            "name": "ann", "age": "42", "bio": "", "ok": "true",
            "lang": "fr", "tags": "a,b",
        })
        assert report.ok
        assert report.values["age"] == 42
        assert report.values["ok"] is True
        assert report.values["tags"] == ["a", "b"]

    def test_required_field_missing(self):
        report = _form().validate({"lang": "en"})
        assert "name" in report.errors

    def test_unknown_field_rejected(self):
        report = _form().validate({"name": "x", "lang": "en", "bogus": 1})
        assert "bogus" in report.errors

    def test_number_conversion_failure(self):
        report = _form().validate({"name": "x", "age": "abc", "lang": "en"})
        assert "age" in report.errors

    def test_range_check(self):
        report = _form().validate({"name": "x", "age": 300, "lang": "en"})
        assert "must be" in report.errors["age"]

    def test_select_option_checked(self):
        report = _form().validate({"name": "x", "lang": "de"})
        assert "lang" in report.errors

    def test_multiselect_options_checked(self):
        report = _form().validate({"name": "x", "lang": "en", "tags": ["z"]})
        assert "tags" in report.errors

    def test_custom_validator(self):
        field = FormField("x", "X", validator=lambda v: "bad" if v == "no" else None)
        form = FormModel("f", "t", (field,))
        assert form.validate({"x": "no"}).errors["x"] == "bad"
        assert form.validate({"x": "yes"}).ok

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(FormError):
            FormModel("f", "t", (FormField("a", "A"), FormField("a", "B")))

    def test_select_requires_options(self):
        with pytest.raises(FormError):
            FormField("s", "S", widget="select")

    def test_unknown_widget(self):
        with pytest.raises(FormError):
            FormField("x", "X", widget="slider")


class TestRendering:
    def test_escape(self):
        assert html_escape('<a href="x">&') == "&lt;a href=&quot;x&quot;&gt;&amp;"

    def test_field_renders_label_and_control(self):
        html = render_field(FormField("name", "Your <name>", required=True),
                            value="a&b")
        assert "Your &lt;name&gt;" in html
        assert 'value="a&amp;b"' in html
        assert "required" in html

    def test_textarea_and_checkbox(self):
        assert "<textarea" in render_field(FormField("b", "B", widget="textarea"))
        checked = render_field(FormField("c", "C", widget="checkbox"), value=True)
        assert "checked" in checked

    def test_select_marks_selected(self):
        html = render_field(
            FormField("l", "L", widget="select", options=("en", "fr")),
            value="fr",
        )
        assert '<option value="fr" selected>' in html

    def test_form_contains_all_fields(self):
        html = render_form(_form())
        for name in ("name", "age", "bio", "ok", "lang", "tags"):
            assert f'id="field-{name}"' in html
        assert "<h2>Test form</h2>" in html

    def test_table(self):
        html = render_table(("a", "b"), [(1, "<x>")])
        assert "<th>a</th>" in html and "<td>&lt;x&gt;</td>" in html
