"""Snapshot persistence round-trips."""

import json

import pytest

from repro.storage import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    TableSchema,
    load_database,
    save_database,
)
from repro.storage.errors import SchemaError, StorageError
from repro.storage.persistence import export_table_csv


@pytest.fixture
def populated(tmp_path):
    db = Database()
    db.create_table(TableSchema(
        "users",
        [Column("id", ColumnType.TEXT), Column("meta", ColumnType.JSON)],
        primary_key=("id",),
    ))
    db.create_table(TableSchema(
        "posts",
        [Column("id", ColumnType.INT), Column("author", ColumnType.TEXT)],
        primary_key=("id",),
        foreign_keys=[ForeignKey(("author",), "users", ("id",))],
    ))
    db.insert("users", {"id": "u1", "meta": {"langs": ["en", "fr"]}})
    db.insert("posts", {"id": 1, "author": "u1"})
    return db


class TestRoundTrip:
    def test_rows_survive(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        loaded = load_database(tmp_path / "snap")
        assert loaded.counts() == populated.counts()
        assert loaded.table("users").get(("u1",))["meta"] == {"langs": ["en", "fr"]}

    def test_schema_survives(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        loaded = load_database(tmp_path / "snap")
        schema = loaded.table("posts").schema
        assert schema.foreign_keys[0].ref_table == "users"
        assert schema.column("id").type is ColumnType.INT

    def test_fk_order_respected_on_load(self, populated, tmp_path):
        # posts reference users; loading must create/insert users first even
        # though 'posts' sorts before 'users' alphabetically.
        save_database(populated, tmp_path / "snap")
        loaded = load_database(tmp_path / "snap")
        assert len(loaded.table("posts")) == 1

    def test_table_versions_bump_past_saved_history(self, populated, tmp_path):
        """A reloaded table's version must exceed every version the saved
        history ever used — otherwise a version-tagged consumer (the query
        cache) could mistake reloaded data for an older state of the same
        table."""
        # Advance the version history well past the row count.
        for index in range(5):
            populated.insert("posts", {"id": 10 + index, "author": "u1"})
            populated.delete("posts", (10 + index,))
        version_at_save = populated.table("posts").version
        save_database(populated, tmp_path / "snap")
        loaded = load_database(tmp_path / "snap")
        # The snapshot holds 1 post row; naive reload would restart at 1.
        assert loaded.table("posts").version > version_at_save

    def test_save_mutate_load_cached_query(self, populated, tmp_path):
        """save → mutate → load → cached query: the loaded database serves
        the snapshot's rows, and its caching stays invalidation-correct
        through further mutations."""
        from repro.storage import col

        save_database(populated, tmp_path / "snap")
        populated.insert("posts", {"id": 2, "author": "u1"})  # post-save mutation
        loaded = load_database(tmp_path / "snap")
        query = loaded.query("posts").where(col("author") == "u1").project("id")
        assert [row["id"] for row in query.execute_cached()] == [1]
        assert [row["id"] for row in query.execute_cached()] == [1]  # cache hit
        assert loaded.query_cache.stats.hits == 1
        loaded.insert("posts", {"id": 3, "author": "u1"})
        rows = sorted(row["id"] for row in query.execute_cached())
        assert rows == [1, 3]  # the version bump invalidated the entry

    def test_legacy_snapshot_without_versions_loads(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap")
        catalog = json.loads((root / "catalog.json").read_text())
        for entry in catalog["tables"]:
            entry.pop("version", None)
        (root / "catalog.json").write_text(json.dumps(catalog))
        loaded = load_database(root)
        assert loaded.counts() == populated.counts()
        assert loaded.table("users").version >= 1

    def test_missing_catalog_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_database(tmp_path / "empty")

    def test_bad_version_rejected(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap")
        catalog = json.loads((root / "catalog.json").read_text())
        catalog["format_version"] = 999
        (root / "catalog.json").write_text(json.dumps(catalog))
        with pytest.raises(StorageError):
            load_database(root)

    def test_cyclic_fk_rejected_on_load(self, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        catalog = {
            "format_version": 1,
            "tables": [
                {
                    "name": "a",
                    "columns": [{"name": "id", "type": "int"},
                                {"name": "b_ref", "type": "int"}],
                    "primary_key": ["id"],
                    "unique": [],
                    "foreign_keys": [{"columns": ["b_ref"], "ref_table": "b",
                                      "ref_columns": ["id"]}],
                },
                {
                    "name": "b",
                    "columns": [{"name": "id", "type": "int"},
                                {"name": "a_ref", "type": "int"}],
                    "primary_key": ["id"],
                    "unique": [],
                    "foreign_keys": [{"columns": ["a_ref"], "ref_table": "a",
                                      "ref_columns": ["id"]}],
                },
            ],
        }
        (root / "catalog.json").write_text(json.dumps(catalog))
        with pytest.raises(SchemaError):
            load_database(root)

    def test_csv_export(self, populated, tmp_path):
        target = export_table_csv(populated, "users", tmp_path / "users.csv")
        content = target.read_text()
        assert content.splitlines()[0] == "id,meta"
        assert "u1" in content
