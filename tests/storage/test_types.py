"""Column type coercion rules."""

import pytest

from repro.storage.errors import TypeMismatchError
from repro.storage.types import ColumnType, coerce_value, is_orderable


class TestCoercion:
    def test_int_passthrough(self):
        assert coerce_value(5, ColumnType.INT) == 5

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, ColumnType.INT)

    def test_int_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(5.0, ColumnType.INT)

    def test_int_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("5", ColumnType.INT)

    def test_float_widens_int(self):
        out = coerce_value(3, ColumnType.FLOAT)
        assert out == 3.0 and isinstance(out, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(False, ColumnType.FLOAT)

    def test_text_accepts_str(self):
        assert coerce_value("hi", ColumnType.TEXT) == "hi"

    def test_text_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(1, ColumnType.TEXT)

    def test_bool_accepts_bool(self):
        assert coerce_value(True, ColumnType.BOOL) is True

    def test_bool_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(1, ColumnType.BOOL)

    def test_bool_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("yes", ColumnType.BOOL)

    def test_json_accepts_nested(self):
        value = {"a": [1, 2, {"b": None}]}
        assert coerce_value(value, ColumnType.JSON) == value

    def test_json_rejects_unserialisable(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(object(), ColumnType.JSON)

    def test_none_passes_every_type(self):
        for column_type in ColumnType:
            assert coerce_value(None, column_type) is None


class TestOrderable:
    def test_json_not_orderable(self):
        assert not is_orderable(ColumnType.JSON)

    def test_scalars_orderable(self):
        for column_type in (ColumnType.INT, ColumnType.FLOAT, ColumnType.TEXT,
                            ColumnType.BOOL):
            assert is_orderable(column_type)
