"""Relational-algebra query builder."""

import pytest

from repro.storage import Column, ColumnType, Database, Query, TableSchema, col
from repro.storage.errors import StorageError, UnknownColumnError


@pytest.fixture
def people_db():
    db = Database()
    db.create_table(TableSchema(
        "person",
        [
            Column("id", ColumnType.TEXT),
            Column("city", ColumnType.TEXT),
            Column("age", ColumnType.INT),
        ],
        primary_key=("id",),
    ))
    db.create_table(TableSchema(
        "visit",
        [
            Column("vid", ColumnType.INT),
            Column("person_id", ColumnType.TEXT),
            Column("place", ColumnType.TEXT),
        ],
        primary_key=("vid",),
    ))
    rows = [
        ("a", "tsukuba", 30), ("b", "paris", 25),
        ("c", "tsukuba", 35), ("d", "dallas", 41),
    ]
    for pid, city, age in rows:
        db.insert("person", {"id": pid, "city": city, "age": age})
    for vid, pid, place in [(1, "a", "lab"), (2, "a", "library"), (3, "b", "lab")]:
        db.insert("visit", {"vid": vid, "person_id": pid, "place": place})
    return db


class TestBasics:
    def test_where(self, people_db):
        out = people_db.query("person").where(col("age") > 28).scalars("id")
        assert sorted(out) == ["a", "c", "d"]

    def test_where_callable(self, people_db):
        out = people_db.query("person").where(lambda r: r["city"] == "paris")
        assert out.count() == 1

    def test_project(self, people_db):
        rows = people_db.query("person").project("id").execute()
        assert all(set(row) == {"id"} for row in rows)

    def test_project_computed(self, people_db):
        rows = (
            people_db.query("person")
            .project("id", next_age=col("age") + 1)
            .execute()
        )
        by_id = {r["id"]: r["next_age"] for r in rows}
        assert by_id["a"] == 31

    def test_project_missing_column(self, people_db):
        with pytest.raises(UnknownColumnError):
            people_db.query("person").project("nope").execute()

    def test_rename(self, people_db):
        row = people_db.query("person").rename(person_id="id").first()
        assert "person_id" in row and "id" not in row

    def test_order_by(self, people_db):
        ages = people_db.query("person").order_by("age").scalars("age")
        assert ages == sorted(ages)

    def test_order_by_desc(self, people_db):
        ages = people_db.query("person").order_by("age", desc=True).scalars("age")
        assert ages == sorted(ages, reverse=True)

    def test_limit_offset(self, people_db):
        out = people_db.query("person").order_by("id").limit(2, offset=1).scalars("id")
        assert out == ["b", "c"]

    def test_limit_negative_rejected(self, people_db):
        with pytest.raises(StorageError):
            people_db.query("person").limit(-1)

    def test_distinct(self, people_db):
        cities = people_db.query("person").project("city").distinct().scalars("city")
        assert sorted(cities) == ["dallas", "paris", "tsukuba"]

    def test_first_and_none(self, people_db):
        assert people_db.query("person").where(col("age") > 100).first() is None
        assert people_db.query("person").order_by("id").first()["id"] == "a"


class TestJoins:
    def test_inner_join(self, people_db):
        out = (
            people_db.query("visit")
            .join(people_db.query("person").rename(person_id="id"),
                  on=[("person_id", "person_id")])
            .execute()
        )
        assert len(out) == 3
        assert all("city" in row for row in out)

    def test_left_join_fills_none(self, people_db):
        out = (
            people_db.query("person")
            .rename(person_id="id")
            .join(people_db.query("visit"), on=[("person_id", "person_id")],
                  how="left")
            .execute()
        )
        unmatched = [r for r in out if r["place"] is None]
        assert {r["person_id"] for r in unmatched} == {"c", "d"}

    def test_join_column_collision_detected(self, people_db):
        q1 = Query.from_rows([{"k": 1, "x": "a"}])
        q2 = Query.from_rows([{"k": 1, "x": "b"}])
        with pytest.raises(StorageError):
            q1.join(q2, on=[("k", "k")]).execute()

    def test_prefix_disambiguates(self, people_db):
        out = (
            people_db.query("visit").prefix("v_")
            .join(people_db.query("person").prefix("p_"), on=[("v_person_id", "p_id")])
            .execute()
        )
        assert len(out) == 3

    def test_bad_join_type(self, people_db):
        with pytest.raises(StorageError):
            people_db.query("person").join(
                people_db.query("visit"), on=[("id", "person_id")], how="outer"
            )

    def test_empty_on_rejected(self, people_db):
        with pytest.raises(StorageError):
            people_db.query("person").join(people_db.query("visit"), on=[])


class TestAggregation:
    def test_group_count(self, people_db):
        out = (
            people_db.query("person").group_by("city")
            .aggregate(n=("count", None)).order_by("city").execute()
        )
        assert [(r["city"], r["n"]) for r in out] == [
            ("dallas", 1), ("paris", 1), ("tsukuba", 2),
        ]

    def test_group_stats(self, people_db):
        out = (
            people_db.query("person").group_by("city")
            .aggregate(
                oldest=("max", "age"), youngest=("min", "age"),
                mean=("avg", "age"), total=("sum", "age"),
            )
            .order_by("city").execute()
        )
        tsukuba = next(r for r in out if r["city"] == "tsukuba")
        assert tsukuba == {
            "city": "tsukuba", "oldest": 35, "youngest": 30,
            "mean": 32.5, "total": 65,
        }

    def test_collect_and_first(self, people_db):
        out = (
            people_db.query("person").group_by("city")
            .aggregate(ids=("collect", "id"), any_id=("first", "id"))
            .order_by("city").execute()
        )
        tsukuba = next(r for r in out if r["city"] == "tsukuba")
        assert sorted(tsukuba["ids"]) == ["a", "c"]
        assert tsukuba["any_id"] in ("a", "c")

    def test_unknown_aggregate(self, people_db):
        with pytest.raises(StorageError):
            people_db.query("person").group_by("city").aggregate(x=("median", "age"))

    def test_count_needs_no_column_others_do(self, people_db):
        with pytest.raises(StorageError):
            people_db.query("person").group_by("city").aggregate(x=("sum", None))

    def test_empty_group_on_empty_table(self, db):
        db.create_table(TableSchema(
            "e", [Column("id", ColumnType.INT)], primary_key=("id",),
        ))
        out = db.query("e").group_by("id").aggregate(n=("count", None)).execute()
        assert out == []
