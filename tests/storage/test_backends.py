"""Storage-backend contract: attach/adopt/restore, WAL mechanics, SQLite
mirrors and listings, and the ``open_database`` entry point."""

from __future__ import annotations

import json

import pytest

from repro.storage import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    MemoryBackend,
    SchemaError,
    StorageBackend,
    TableSchema,
    dump_canonical,
    open_database,
)
from repro.storage.backends import BACKENDS, SqliteBackend, WalBackend, backend_class
from repro.storage.backends.sqlite import ListingSpec
from repro.storage.errors import StorageError


def _worker_schema() -> TableSchema:
    return TableSchema(
        "worker",
        [
            Column("id", ColumnType.TEXT),
            Column("skill", ColumnType.FLOAT),
            Column("tags", ColumnType.JSON, nullable=True),
        ],
        primary_key=("id",),
    )


def _relationship_schema() -> TableSchema:
    return TableSchema(
        "relationship",
        [
            Column("worker_id", ColumnType.TEXT),
            Column("task_id", ColumnType.TEXT),
            Column("status", ColumnType.TEXT),
            Column("updated_at", ColumnType.FLOAT),
        ],
        primary_key=("worker_id", "task_id"),
        foreign_keys=[ForeignKey(("worker_id",), "worker", ("id",))],
    )


def _drive(db: Database) -> None:
    db.create_table(_worker_schema())
    db.create_table(_relationship_schema())
    for i in range(8):
        db.insert("worker", {"id": f"w{i}", "skill": i / 10, "tags": ["a", i]})
    for i in range(8):
        db.insert(
            "relationship",
            {
                "worker_id": f"w{i}",
                "task_id": f"t{i % 3}",
                "status": "eligible",
                "updated_at": float(i),
            },
        )
    db.update("worker", ("w0",), {"skill": 0.99})
    db.update("relationship", ("w1", "t1"), {"status": "undertakes"})
    db.delete("relationship", ("w2", "t2"))
    db.begin()
    db.insert("worker", {"id": "tx", "skill": 0.1})
    db.rollback()


class TestRegistry:
    def test_every_registered_backend_resolves(self):
        for name in BACKENDS:
            assert issubclass(backend_class(name), StorageBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError, match="unknown storage backend"):
            backend_class("etcd")
        with pytest.raises(StorageError, match="unknown storage backend"):
            open_database("/tmp/x", backend="etcd")

    def test_memory_backend_takes_no_path(self, tmp_path):
        with pytest.raises(StorageError, match="no path"):
            open_database(tmp_path / "x", backend="memory")

    def test_durable_backends_require_path(self):
        for name in ("wal", "sqlite"):
            with pytest.raises(StorageError, match="requires a path"):
                open_database(backend=name)

    def test_backend_instance_passthrough(self, tmp_path):
        db = open_database(backend=WalBackend(tmp_path / "d"))
        assert db.backend.name == "wal"
        db.close()
        with pytest.raises(StorageError, match="backend constructor"):
            open_database(tmp_path / "y", backend=MemoryBackend())


class TestAttachHandshake:
    def test_attach_is_exclusive(self, tmp_path):
        db = Database(WalBackend(tmp_path / "a"))
        with pytest.raises(StorageError, match="already has"):
            db.attach_backend(WalBackend(tmp_path / "b"))
        db.close()

    def test_attach_inside_transaction_rejected(self, tmp_path):
        db = Database()
        db.begin()
        with pytest.raises(StorageError, match="transaction"):
            db.attach_backend(WalBackend(tmp_path / "a"))
        db.rollback()

    @pytest.mark.parametrize("name", ["wal", "sqlite"])
    def test_adopt_bootstraps_persistence(self, tmp_path, name):
        # A populated in-memory database gains durability after the fact:
        # attaching a fresh backend adopts the current contents.
        db = Database()
        _drive(db)
        target = tmp_path / "adopted"
        db.attach_backend(backend_class(name)(target))

        def rows_by_pk(d: Database) -> dict[str, list]:
            return {
                n: sorted(d.table(n).rows(), key=lambda r: repr(tuple(r.values())))
                for n in d.table_names
            }

        expected = rows_by_pk(db)
        db.close()
        reopened = open_database(target, backend=name)
        # Adoption replays current rows only, not the full mutation
        # history, so versions restart — rows and schemas must match.
        assert rows_by_pk(reopened) == expected
        assert reopened.counts() == {"worker": 8, "relationship": 7}
        reopened.close()

    def test_restore_into_populated_database_rejected(self, tmp_path):
        db = open_database(tmp_path / "d", backend="wal")
        db.create_table(_worker_schema())
        db.insert("worker", {"id": "w0", "skill": 0.5})
        db.close()
        populated = Database()
        populated.create_table(_worker_schema())
        # Restoring collides on the catalogue (same table name) or, with
        # disjoint names, trips the non-empty guard — either way it raises
        # instead of silently merging persisted and live state.
        with pytest.raises((StorageError, SchemaError)):
            populated.attach_backend(WalBackend(tmp_path / "d"))


class TestWalBackend:
    def test_round_trip_restores_versions_and_order(self, tmp_path):
        db = open_database(tmp_path / "d", backend="wal")
        _drive(db)
        reference = dump_canonical(db)
        versions = {n: db.table(n).version for n in db.table_names}
        order = list(db.table("relationship")._rows)
        db.close()
        reopened = open_database(tmp_path / "d", backend="wal")
        assert dump_canonical(reopened) == reference
        assert {n: reopened.table(n).version for n in reopened.table_names} == versions
        assert list(reopened.table("relationship")._rows) == order
        reopened.close()

    def test_compaction_preserves_state_and_truncates_log(self, tmp_path):
        db = open_database(tmp_path / "d", backend="wal", compact_every=5)
        _drive(db)
        reference = dump_canonical(db)
        assert (tmp_path / "d" / "snapshot" / "catalog.json").exists()
        # The log only holds the records since the last automatic compaction.
        wal_lines = (tmp_path / "d" / "wal.jsonl").read_text().splitlines()
        assert len(wal_lines) < 5
        db.close()
        reopened = open_database(tmp_path / "d", backend="wal")
        assert dump_canonical(reopened) == reference
        reopened.close()

    def test_explicit_compact_then_more_mutations(self, tmp_path):
        db = open_database(tmp_path / "d", backend="wal")
        db.create_table(_worker_schema())
        db.insert("worker", {"id": "w0", "skill": 0.5})
        db.backend.compact()
        db.insert("worker", {"id": "w1", "skill": 0.6})
        reference = dump_canonical(db)
        db.close()
        reopened = open_database(tmp_path / "d", backend="wal")
        assert dump_canonical(reopened) == reference
        reopened.close()

    def test_torn_tail_record_is_dropped(self, tmp_path):
        db = open_database(tmp_path / "d", backend="wal")
        db.create_table(_worker_schema())
        db.insert("worker", {"id": "w0", "skill": 0.5})
        committed = dump_canonical(db)
        db.backend.flush()
        wal = tmp_path / "d" / "wal.jsonl"
        with wal.open("a", encoding="utf-8") as handle:
            handle.write('{"lsn": 99, "op": "insert", "t": "worker", "ro')
        torn_size = wal.stat().st_size
        reopened = open_database(tmp_path / "d", backend="wal")
        assert dump_canonical(reopened) == committed
        assert wal.stat().st_size < torn_size  # tail truncated away
        reopened.close()

    def test_drop_table_survives_restart(self, tmp_path):
        db = open_database(tmp_path / "d", backend="wal")
        db.create_table(_worker_schema())
        db.create_table(_relationship_schema())
        db.drop_table("relationship")
        db.close()
        reopened = open_database(tmp_path / "d", backend="wal")
        assert reopened.table_names == ("worker",)
        reopened.close()

    def test_marker_mismatch_rejected(self, tmp_path):
        open_database(tmp_path / "d", backend="wal").close()
        with pytest.raises(StorageError, match="not a WAL"):
            (tmp_path / "d" / "backend.json").write_text(
                json.dumps({"backend": "other", "format_version": 1})
            )
            open_database(tmp_path / "d", backend="wal")

    def test_compact_every_validated(self, tmp_path):
        with pytest.raises(StorageError, match="compact_every"):
            WalBackend(tmp_path / "d", compact_every=0)


class TestSqliteBackend:
    def test_round_trip_restores_versions_and_order(self, tmp_path):
        db = open_database(tmp_path / "d.sqlite", backend="sqlite")
        _drive(db)
        reference = dump_canonical(db)
        order = list(db.table("relationship")._rows)
        db.close()
        reopened = open_database(tmp_path / "d.sqlite", backend="sqlite")
        assert dump_canonical(reopened) == reference
        assert list(reopened.table("relationship")._rows) == order
        reopened.close()

    def test_replace_moves_row_to_end_like_dict_reinsert(self, tmp_path):
        mem = Database()
        db = open_database(tmp_path / "d.sqlite", backend="sqlite")
        for d in (mem, db):
            d.create_table(_worker_schema())
            for i in range(4):
                d.insert("worker", {"id": f"w{i}", "skill": 0.1})
            d.update("worker", ("w1",), {"skill": 0.9})
        db.close()
        reopened = open_database(tmp_path / "d.sqlite", backend="sqlite")
        assert list(reopened.table("worker")._rows) == list(mem.table("worker")._rows)
        reopened.close()

    def test_worker_page_listing_is_maintained(self, tmp_path):
        db = open_database(tmp_path / "d.sqlite", backend="sqlite")
        _drive(db)
        listing = db.backend.query_listing("worker_page", "w1")
        assert listing == [
            {"worker_id": "w1", "task_id": "t1", "status": "undertakes"}
        ]
        assert db.backend.query_listing("worker_page", "w2") == []  # deleted
        db.delete("relationship", ("w1", "t1"))
        assert db.backend.query_listing("worker_page", "w1") == []
        db.close()

    def test_unknown_listing_rejected(self, tmp_path):
        db = open_database(tmp_path / "d.sqlite", backend="sqlite")
        with pytest.raises(StorageError, match="no materialized listing"):
            db.backend.query_listing("nope", "w1")
        db.close()

    def test_listing_key_must_be_projected(self):
        with pytest.raises(StorageError, match="must be one of"):
            ListingSpec(name="bad", source="t", key="x", columns=("y",))

    def test_custom_listing(self, tmp_path):
        spec = ListingSpec(
            name="by_status",
            source="relationship",
            key="status",
            columns=("status", "worker_id"),
        )
        db = open_database(
            tmp_path / "d.sqlite", backend="sqlite", listings=(spec,)
        )
        _drive(db)
        rows = db.backend.query_listing("by_status", "undertakes")
        assert rows == [{"status": "undertakes", "worker_id": "w1"}]
        db.close()

    def test_marker_mismatch_rejected(self, tmp_path):
        import sqlite3

        path = tmp_path / "d.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE _meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute("INSERT INTO _meta VALUES ('backend', 'other')")
        conn.commit()
        conn.close()
        with pytest.raises(StorageError, match="not a sqlite-backend"):
            SqliteBackend(path)


class TestFkOrderRestore:
    @pytest.mark.parametrize("name", ["wal", "sqlite"])
    def test_fk_dependent_catalog_restores(self, tmp_path, name):
        # relationship references worker; restore must create worker first
        # even though catalogue iteration order could say otherwise.
        db = open_database(tmp_path / "d", backend=name)
        db.create_table(_worker_schema())
        db.create_table(_relationship_schema())
        db.insert("worker", {"id": "w0", "skill": 0.5})
        db.insert(
            "relationship",
            {
                "worker_id": "w0",
                "task_id": "t0",
                "status": "eligible",
                "updated_at": 0.0,
            },
        )
        reference = dump_canonical(db)
        db.close()
        reopened = open_database(tmp_path / "d", backend=name)
        assert dump_canonical(reopened) == reference
        with pytest.raises(SchemaError, match="referenced"):
            reopened.drop_table("worker")
        reopened.close()
