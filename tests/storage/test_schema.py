"""Schema validation: columns, keys, constraints."""

import pytest

from repro.storage.errors import SchemaError, UnknownColumnError
from repro.storage.schema import (
    Column,
    ForeignKey,
    TableSchema,
    diff_schemas,
)
from repro.storage.types import ColumnType


def _schema(**kwargs):
    base = dict(
        name="t",
        columns=[Column("id", ColumnType.INT), Column("x", ColumnType.TEXT)],
        primary_key=("id",),
    )
    base.update(kwargs)
    return TableSchema(base["name"], base["columns"], base["primary_key"],
                       base.get("unique", ()), base.get("foreign_keys", ()))


class TestColumn:
    def test_rejects_bad_name(self):
        with pytest.raises(SchemaError):
            Column("not a name", ColumnType.INT)

    def test_default_sentinel(self):
        assert not Column("a", ColumnType.INT).has_default
        assert Column("a", ColumnType.INT, default=None).has_default

    def test_callable_default_resolves(self):
        column = Column("a", ColumnType.INT, default=lambda: 42)
        assert column.resolve_default() == 42


class TestTableSchema:
    def test_requires_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INT)], primary_key=())

    def test_pk_must_exist(self):
        with pytest.raises(UnknownColumnError):
            _schema(primary_key=("missing",))

    def test_pk_not_nullable(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("id", ColumnType.INT, nullable=True)],
                primary_key=("id",),
            )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", ColumnType.INT), Column("a", ColumnType.TEXT)],
                primary_key=("a",),
            )

    def test_unique_columns_must_exist(self):
        with pytest.raises(UnknownColumnError):
            _schema(unique=[("missing",)])

    def test_empty_unique_rejected(self):
        with pytest.raises(SchemaError):
            _schema(unique=[()])

    def test_fk_arity_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "other", ("c",))

    def test_fk_columns_must_exist(self):
        with pytest.raises(UnknownColumnError):
            _schema(foreign_keys=[ForeignKey(("missing",), "other", ("id",))])

    def test_pk_tuple_extraction(self):
        schema = _schema()
        assert schema.pk_tuple({"id": 7, "x": "a"}) == (7,)

    def test_column_lookup(self):
        schema = _schema()
        assert schema.column("x").type is ColumnType.TEXT
        with pytest.raises(UnknownColumnError):
            schema.column("nope")

    def test_column_names_ordered(self):
        assert _schema().column_names == ("id", "x")


class TestSchemaDiff:
    def test_identical_schemas_empty_diff(self):
        assert diff_schemas(_schema(), _schema()).is_empty

    def test_added_and_removed(self):
        new = TableSchema(
            "t",
            [Column("id", ColumnType.INT), Column("y", ColumnType.TEXT)],
            primary_key=("id",),
        )
        diff = diff_schemas(_schema(), new)
        assert diff.added_columns == ("y",)
        assert diff.removed_columns == ("x",)

    def test_retyped(self):
        new = TableSchema(
            "t",
            [Column("id", ColumnType.INT), Column("x", ColumnType.INT)],
            primary_key=("id",),
        )
        assert diff_schemas(_schema(), new).retyped_columns == ("x",)
