"""The curated public surface of ``repro.storage`` must not drift.

``__all__`` is the contract: everything in it must resolve and be
importable from the package root, and every public attribute the package
actually exposes must be either listed or a submodule — so an export
added without updating ``__all__`` (or vice versa) fails here instead of
surfacing as an undocumented API.
"""

from __future__ import annotations

import inspect

import repro
import repro.serving as serving
import repro.storage as storage
from repro.storage import backends

#: The intended top-level surface, spelled out so a drive-by export
#: changes this file too (review bait, on purpose).
EXPECTED_STORAGE_ALL = {
    "CacheStats",
    "Column",
    "ColumnType",
    "ConstraintViolation",
    "Database",
    "DuplicateKeyError",
    "Expr",
    "ForeignKey",
    "ForeignKeyError",
    "MemoryBackend",
    "Mutation",
    "NotNullViolation",
    "Query",
    "QueryCache",
    "SchemaError",
    "StorageBackend",
    "Table",
    "TableSchema",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownTableError",
    "col",
    "dump_canonical",
    "lit",
    "load_database",
    "open_database",
    "save_database",
}

EXPECTED_SERVING_ALL = {
    "AdmissionGate",
    "OpOutcome",
    "PlatformServer",
    "ServerClosed",
    "ServingConfig",
    "ServingStats",
    "WriteOp",
    "apply_ops",
    "http_request",
}

EXPECTED_BACKENDS_ALL = {
    "ListingSpec",
    "MemoryBackend",
    "Mutation",
    "SqliteBackend",
    "StorageBackend",
    "WalBackend",
    "open_database",
}


def test_storage_all_matches_expected():
    assert set(storage.__all__) == EXPECTED_STORAGE_ALL
    assert storage.__all__ == sorted(storage.__all__), "keep __all__ sorted"


def test_serving_all_matches_expected():
    assert set(serving.__all__) == EXPECTED_SERVING_ALL
    assert serving.__all__ == sorted(serving.__all__), "keep __all__ sorted"


def test_serving_exports_resolve_lazily():
    # Only ServingConfig is imported eagerly (it feeds RuntimeConfig);
    # the rest resolve through the PEP 562 hook without import cycles.
    for name in serving.__all__:
        assert getattr(serving, name) is not None
    assert set(serving.__all__) <= set(dir(serving))


def test_importing_repro_does_not_pull_the_server():
    import subprocess
    import sys

    code = "import repro, sys; assert 'repro.serving.server' not in sys.modules"
    subprocess.run([sys.executable, "-c", code], check=True)


def test_serving_lazy_attr_errors_cleanly():
    import pytest

    with pytest.raises(AttributeError, match="no attribute"):
        serving.NoSuchThing


def test_backends_all_matches_expected():
    assert set(backends.__all__) == EXPECTED_BACKENDS_ALL
    assert backends.__all__ == sorted(backends.__all__), "keep __all__ sorted"


def test_every_export_resolves():
    for name in storage.__all__:
        assert getattr(storage, name) is not None
    for name in backends.__all__:
        # Exercises the lazy PEP 562 path for WalBackend/SqliteBackend too.
        assert getattr(backends, name) is not None


def test_no_unlisted_public_attributes():
    listed = set(storage.__all__)
    for name, value in vars(storage).items():
        if name.startswith("_") or name in listed:
            continue
        assert inspect.ismodule(value), (
            f"repro.storage.{name} is public but not in __all__ "
            f"(and not a submodule)"
        )


def test_repro_root_exports_runtime_config():
    assert "RuntimeConfig" in repro.__all__
    assert "ServingConfig" in repro.__all__
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_lazy_backend_attr_errors_cleanly():
    import pytest

    with pytest.raises(AttributeError, match="no attribute"):
        backends.NoSuchBackend
