"""Table-level integrity: PK, unique, not-null, defaults, indexes."""

import pytest

from repro.storage import Column, ColumnType, TableSchema
from repro.storage.errors import (
    DuplicateKeyError,
    NotNullViolation,
    StorageError,
    TypeMismatchError,
    UnknownColumnError,
)
from repro.storage.table import Table


@pytest.fixture
def table(worker_table_schema) -> Table:
    return Table(worker_table_schema)


class TestInsert:
    def test_insert_returns_copy(self, table):
        row = table.insert({"id": "a", "age": 30})
        row["age"] = 99
        assert table.get(("a",))["age"] == 30

    def test_defaults_applied(self, table):
        row = table.insert({"id": "a", "age": 30})
        assert row["active"] is True

    def test_nullable_defaults_to_none(self, table):
        assert table.insert({"id": "a", "age": 1})["score"] is None

    def test_duplicate_pk_rejected(self, table):
        table.insert({"id": "a", "age": 1})
        with pytest.raises(DuplicateKeyError):
            table.insert({"id": "a", "age": 2})

    def test_not_null_enforced(self, table):
        with pytest.raises(NotNullViolation):
            table.insert({"id": "a", "age": None})

    def test_missing_required_column(self, table):
        with pytest.raises(NotNullViolation):
            table.insert({"id": "a"})

    def test_unknown_column_rejected(self, table):
        with pytest.raises(UnknownColumnError):
            table.insert({"id": "a", "age": 1, "bogus": 2})

    def test_type_coercion(self, table):
        row = table.insert({"id": "a", "age": 1, "score": 3})
        assert isinstance(row["score"], float)

    def test_type_mismatch_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            table.insert({"id": "a", "age": "thirty"})


class TestUniqueConstraint:
    def test_unique_enforced(self):
        schema = TableSchema(
            "u",
            [Column("id", ColumnType.INT), Column("email", ColumnType.TEXT)],
            primary_key=("id",),
            unique=[("email",)],
        )
        table = Table(schema)
        table.insert({"id": 1, "email": "a@x"})
        with pytest.raises(DuplicateKeyError):
            table.insert({"id": 2, "email": "a@x"})

    def test_null_never_conflicts(self):
        schema = TableSchema(
            "u",
            [Column("id", ColumnType.INT),
             Column("email", ColumnType.TEXT, nullable=True)],
            primary_key=("id",),
            unique=[("email",)],
        )
        table = Table(schema)
        table.insert({"id": 1, "email": None})
        table.insert({"id": 2, "email": None})  # no conflict
        assert len(table) == 2

    def test_failed_insert_leaves_indexes_clean(self):
        schema = TableSchema(
            "u",
            [Column("id", ColumnType.INT), Column("email", ColumnType.TEXT)],
            primary_key=("id",),
            unique=[("email",)],
        )
        table = Table(schema)
        table.insert({"id": 1, "email": "a@x"})
        with pytest.raises(DuplicateKeyError):
            table.insert({"id": 2, "email": "a@x"})
        table.insert({"id": 2, "email": "b@x"})  # id=2 must still be insertable
        assert len(table) == 2


class TestUpdateDelete:
    def test_update_changes_row(self, table):
        table.insert({"id": "a", "age": 1})
        updated = table.update(("a",), {"age": 2})
        assert updated["age"] == 2
        assert table.get(("a",))["age"] == 2

    def test_update_missing_row(self, table):
        with pytest.raises(StorageError):
            table.update(("zzz",), {"age": 2})

    def test_update_can_move_pk(self, table):
        table.insert({"id": "a", "age": 1})
        table.update(("a",), {"id": "b"})
        assert table.get(("a",)) is None
        assert table.get(("b",))["age"] == 1

    def test_update_pk_collision_rejected(self, table):
        table.insert({"id": "a", "age": 1})
        table.insert({"id": "b", "age": 2})
        with pytest.raises(DuplicateKeyError):
            table.update(("a",), {"id": "b"})
        assert table.get(("a",))["age"] == 1  # untouched

    def test_delete_returns_row(self, table):
        table.insert({"id": "a", "age": 5})
        assert table.delete(("a",))["age"] == 5
        assert table.get(("a",)) is None

    def test_delete_missing_raises(self, table):
        with pytest.raises(StorageError):
            table.delete(("a",))

    def test_truncate(self, table):
        table.insert({"id": "a", "age": 1})
        table.insert({"id": "b", "age": 2})
        assert table.truncate() == 2
        assert len(table) == 0


class TestIndexes:
    def test_lookup_without_index_scans(self, table):
        table.insert({"id": "a", "age": 30})
        table.insert({"id": "b", "age": 30})
        table.insert({"id": "c", "age": 31})
        assert {r["id"] for r in table.lookup(("age",), (30,))} == {"a", "b"}

    def test_index_used_and_maintained(self, table):
        index = table.create_index(("age",))
        table.insert({"id": "a", "age": 30})
        table.insert({"id": "b", "age": 30})
        assert index.lookup(30) == {("a",), ("b",)}
        table.update(("a",), {"age": 31})
        assert index.lookup(30) == {("b",)}
        table.delete(("b",))
        assert index.lookup(30) == set()

    def test_index_built_over_existing_rows(self, table):
        table.insert({"id": "a", "age": 30})
        index = table.create_index(("age",))
        assert index.lookup(30) == {("a",)}

    def test_create_index_idempotent(self, table):
        assert table.create_index(("age",)) is table.create_index(("age",))

    def test_sorted_index_range(self, table):
        sorted_index = table.create_sorted_index("age")
        for i, age in enumerate([25, 30, 35, 40]):
            table.insert({"id": f"w{i}", "age": age})
        pks = list(sorted_index.range(low=30, high=35))
        assert pks == [("w1",), ("w2",)]

    def test_sorted_index_exclusive_bounds(self, table):
        sorted_index = table.create_sorted_index("age")
        for i, age in enumerate([25, 30, 35]):
            table.insert({"id": f"w{i}", "age": age})
        assert list(sorted_index.range(low=25, include_low=False)) == [
            ("w1",), ("w2",),
        ]
        assert list(sorted_index.range(high=35, include_high=False)) == [
            ("w0",), ("w1",),
        ]

    def test_rows_iteration_gives_copies(self, table):
        table.insert({"id": "a", "age": 1})
        for row in table.rows():
            row["age"] = 99
        assert table.get(("a",))["age"] == 1
