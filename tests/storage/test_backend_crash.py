"""Kill-and-recover: a hard process death must lose nothing committed.

A child process opens a durable database, applies a mutation stream,
dumps the canonical state it reached, and dies via ``os._exit`` — no
``close()``, no atexit handlers, no flush beyond what each mutation
already guarantees.  The parent then recovers and asserts byte-for-byte
equality with the child's last committed state, including the
``Table.version`` counters.

For the WAL backend the test additionally simulates dying *mid-append*:
the bytes of a half-written record are tacked onto the log (exactly what
a kill between ``write`` and the trailing newline leaves behind), and
recovery must truncate it away and restore the committed prefix.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.storage import dump_canonical, open_database

pytestmark = pytest.mark.backend_diff

_CHILD = """
import os, sys
sys.path.insert(0, {src!r})
from repro.storage import (
    Column, ColumnType, TableSchema, dump_canonical, open_database,
)

db = open_database({target!r}, backend={backend!r})
db.create_table(TableSchema(
    "events",
    [Column("id", ColumnType.INT), Column("kind", ColumnType.TEXT)],
    primary_key=("id",),
))
for i in range(60):
    db.insert("events", {{"id": i, "kind": f"e{{i % 5}}"}})
    if i % 7 == 3:
        db.update("events", (i,), {{"kind": "edited"}})
    if i % 11 == 8:
        db.delete("events", (i - 1,))
with open({dump!r}, "wb") as fh:
    fh.write(dump_canonical(db))
os._exit(1)  # hard death: no close(), no flush, no atexit
"""

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _crash_child(target: Path, backend: str, dump: Path) -> None:
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD.format(
                src=_SRC, target=str(target), backend=backend, dump=str(dump)
            ),
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 1, proc.stderr
    assert dump.exists(), proc.stderr


@pytest.mark.parametrize("backend", ["wal", "sqlite"])
def test_hard_kill_recovers_committed_state(tmp_path, backend):
    target = tmp_path / f"crash-{backend}"
    dump = tmp_path / "committed.bin"
    _crash_child(target, backend, dump)
    recovered = open_database(target, backend=backend)
    assert dump_canonical(recovered) == dump.read_bytes()
    recovered.close()


def test_wal_kill_mid_append_restores_committed_prefix(tmp_path):
    target = tmp_path / "crash-wal"
    dump = tmp_path / "committed.bin"
    _crash_child(target, "wal", dump)
    # The kill landed between write() and the record's newline: the log
    # ends in half a record.  Recovery must drop exactly that tail.
    wal = target / "wal.jsonl"
    original = wal.read_bytes()
    with wal.open("ab") as handle:
        handle.write(b'{"lsn": 100000, "op": "insert", "t": "events", "pk": [9')
    recovered = open_database(target, backend="wal")
    assert dump_canonical(recovered) == dump.read_bytes()
    recovered.close()
    # And the recovery truncated the file back to the committed prefix,
    # so the *next* recovery starts from a clean log.
    assert os.path.getsize(wal) <= len(original)
    recovered_again = open_database(target, backend="wal")
    assert dump_canonical(recovered_again) == dump.read_bytes()
    recovered_again.close()


def test_wal_repeated_crashes_converge(tmp_path):
    """Crash, recover, mutate, crash again: each recovery must see the
    previous generation's committed state plus its own mutations."""
    target = tmp_path / "crash-wal"
    dump = tmp_path / "committed.bin"
    _crash_child(target, "wal", dump)
    db = open_database(target, backend="wal")
    db.insert("events", {"id": 1000, "kind": "post-crash"})
    state = dump_canonical(db)
    db.backend.flush()
    # Another hard death: simply never close; the appended record is
    # already on disk (the WAL flushes after every record).
    del db
    recovered = open_database(target, backend="wal")
    assert dump_canonical(recovered) == state
    recovered.close()
