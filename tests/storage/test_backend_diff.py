"""Randomized differential check of the durable storage backends.

Three databases — in-memory, WAL-backed and SQLite-backed — receive the
*same* randomized mutation stream: inserts, updates (including
primary-key moves), deletes, truncates, transactions that commit or roll
back, table creation/drop and (for the durable pair) mid-stream
close-and-reopen "restarts".  After every scenario the canonical dump —
schemas, rows, insertion order *and* ``Table.version`` counters — must
be byte-identical across all three, and reopening the durable databases
one final time must reproduce the same bytes again.

The CI ``backend-diff`` job runs this module with
``BACKEND_DIFF_EXAMPLES=40``, mirroring the engine/shard/platform diff
oracle gates; the local default keeps the tier-1 suite fast.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.storage import (
    Column,
    ColumnType,
    Database,
    TableSchema,
    dump_canonical,
    open_database,
)

EXAMPLES = int(os.environ.get("BACKEND_DIFF_EXAMPLES", "6"))
OPS_PER_SCENARIO = int(os.environ.get("BACKEND_DIFF_OPS", "120"))

pytestmark = pytest.mark.backend_diff

_STATUSES = ("eligible", "interested", "undertakes", "declined", "completed")


def _schema(name: str) -> TableSchema:
    return TableSchema(
        name,
        [
            Column("k", ColumnType.TEXT),
            Column("n", ColumnType.INT),
            Column("status", ColumnType.TEXT),
            Column("payload", ColumnType.JSON, nullable=True),
        ],
        primary_key=("k",),
    )


class _Lockstep:
    """The three databases under test, mutated in lockstep."""

    def __init__(self, tmp_path):
        self.wal_dir = tmp_path / "wal"
        self.sqlite_path = tmp_path / "db.sqlite"
        self.mem = Database()
        self.wal = open_database(
            self.wal_dir, backend="wal", compact_every=37
        )
        self.sqlite = open_database(self.sqlite_path, backend="sqlite")

    @property
    def all(self):
        return (self.mem, self.wal, self.sqlite)

    def reopen_durable(self):
        """Simulate a clean restart of both durable databases."""
        self.wal.close()
        self.sqlite.close()
        self.wal = open_database(self.wal_dir, backend="wal", compact_every=37)
        self.sqlite = open_database(self.sqlite_path, backend="sqlite")

    def close(self):
        self.wal.close()
        self.sqlite.close()


def _apply_random_op(rng: random.Random, dbs: _Lockstep, tables: list[str]) -> None:
    op = rng.random()
    if not tables or op < 0.06:
        name = f"t{len(tables)}"
        if name not in tables:
            for db in dbs.all:
                db.create_table(_schema(name))
            tables.append(name)
        return
    table = rng.choice(tables)
    if op < 0.45:
        key = f"k{rng.randrange(40)}"
        if not dbs.mem.table(table).contains((key,)):
            row = {
                "k": key,
                "n": rng.randrange(1000),
                "status": rng.choice(_STATUSES),
                "payload": rng.choice((None, ["x", rng.randrange(5)], {"a": 1})),
            }
            for db in dbs.all:
                db.insert(table, row)
    elif op < 0.65:
        pks = list(dbs.mem.table(table).pks())
        if pks:
            pk = rng.choice(sorted(pks))
            changes: dict = {"n": rng.randrange(1000)}
            if rng.random() < 0.25:
                new_key = f"k{rng.randrange(40)}"
                if not dbs.mem.table(table).contains((new_key,)):
                    changes["k"] = new_key
            for db in dbs.all:
                db.update(table, pk, changes)
    elif op < 0.80:
        pks = list(dbs.mem.table(table).pks())
        if pks:
            pk = rng.choice(sorted(pks))
            for db in dbs.all:
                db.delete(table, pk)
    elif op < 0.86:
        # A transaction that inserts a couple of rows, then commits or
        # rolls back — rollbacks replay through the undo log, which must
        # stream to the backends exactly like forward mutations.
        commit = rng.random() < 0.5
        rows = [
            {
                "k": f"tx{rng.randrange(40)}",
                "n": rng.randrange(1000),
                "status": rng.choice(_STATUSES),
                "payload": None,
            }
            for _ in range(rng.randrange(1, 4))
        ]
        for db in dbs.all:
            db.begin()
            for row in rows:
                if not db.table(table).contains((row["k"],)):
                    db.insert(table, row)
            if commit:
                db.commit()
            else:
                db.rollback()
    elif op < 0.90:
        for db in dbs.all:
            db.table(table).truncate()
    elif op < 0.94 and len(tables) > 1:
        victim = rng.choice(tables)
        tables.remove(victim)
        for db in dbs.all:
            db.drop_table(victim)
    else:
        dbs.reopen_durable()


@pytest.mark.parametrize("seed", range(EXAMPLES))
def test_backends_byte_identical_under_random_streams(tmp_path, seed):
    rng = random.Random(0xBACD + seed)
    dbs = _Lockstep(tmp_path)
    tables: list[str] = []
    for step in range(OPS_PER_SCENARIO):
        _apply_random_op(rng, dbs, tables)
        if step % 30 == 29:
            reference = dump_canonical(dbs.mem)
            assert dump_canonical(dbs.wal) == reference
            assert dump_canonical(dbs.sqlite) == reference
    reference = dump_canonical(dbs.mem)
    assert dump_canonical(dbs.wal) == reference
    assert dump_canonical(dbs.sqlite) == reference
    # One final restart: recovery must reproduce the same bytes again.
    dbs.reopen_durable()
    assert dump_canonical(dbs.wal) == reference
    assert dump_canonical(dbs.sqlite) == reference
    dbs.close()


@pytest.mark.parametrize("backend", ["wal", "sqlite"])
def test_platform_scenario_round_trips(tmp_path, backend):
    """A real platform session — workers, a project, a full round — must
    survive a restart byte-for-byte on either durable backend."""
    from repro.core import Crowd4U, HumanFactors

    target = tmp_path / f"platform-{backend}"
    db = open_database(target, backend=backend)
    platform = Crowd4U(seed=3, db=db)
    for i in range(4):
        platform.register_worker(
            f"w{i}",
            HumanFactors(
                native_languages=frozenset({"en"}),
                languages={"fr": 0.9 if i % 2 else 0.3},
                skills={"translation": 0.5 + 0.1 * i},
                reliability=0.9,
            ),
        )
    platform.register_project(
        name="p",
        requester="r",
        cylog_source="""
            open translate(seg: text, out: text) key (seg) asking "t {seg}".
            segment("s1"). segment("s2").
            eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
            translated(S, T) :- segment(S), translate(S, T).
        """,
    )
    platform.step()
    reference = dump_canonical(platform.db)
    platform.close()
    reopened = open_database(target, backend=backend)
    assert dump_canonical(reopened) == reference
    reopened.close()
