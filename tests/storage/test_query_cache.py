"""Table versions, secondary-index consistency through rollback, and the
invalidation-correct query/result cache."""

from __future__ import annotations

import pytest

from repro.storage import (
    Column,
    ColumnType,
    Database,
    Query,
    QueryCache,
    TableSchema,
    col,
)


def _make_db() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "item",
            [
                Column("id", ColumnType.TEXT),
                Column("color", ColumnType.TEXT),
                Column("size", ColumnType.INT),
            ],
            primary_key=("id",),
        )
    )
    return db


@pytest.fixture
def db() -> Database:
    return _make_db()


class TestTableVersions:
    def test_every_mutation_bumps(self, db):
        table = db.table("item")
        v0 = table.version
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        v1 = table.version
        db.update("item", ("a",), {"size": 2})
        v2 = table.version
        db.delete("item", ("a",))
        v3 = table.version
        assert v0 < v1 < v2 < v3

    def test_rollback_bumps_version(self, db):
        """The undo path must advance versions too, or caches would serve
        pre-rollback results as current."""
        table = db.table("item")
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        before = table.version
        db.begin()
        db.update("item", ("a",), {"color": "blue"})
        db.rollback()
        assert table.version > before

    def test_truncate_with_indexes(self, db):
        """Regression: truncate used to raise AttributeError on any table
        with a hash index (MultiKeyHashIndex had no ``clear``)."""
        table = db.table("item")
        hash_index = table.create_index(("color",))
        sorted_index = table.create_sorted_index("size")
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        db.insert("item", {"id": "b", "color": "red", "size": 2})
        before = table.version
        assert table.truncate() == 2
        assert table.version > before
        assert len(table) == 0
        assert hash_index.lookup("red") == set()
        assert list(sorted_index.range()) == []


class TestIndexRollbackSync:
    def test_pk_change_update_rolls_back_indexes(self, db):
        """Satellite regression: update the PK and an indexed column inside
        a transaction, roll back, and query through the index."""
        table = db.table("item")
        index = table.create_index(("color",))
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        db.begin()
        db.update("item", ("a",), {"id": "b", "color": "blue"})
        assert index.lookup("blue") == {("b",)}
        db.rollback()
        assert index.lookup("red") == {("a",)}
        assert index.lookup("blue") == set()
        assert table.lookup(("color",), ("red",)) == [
            {"id": "a", "color": "red", "size": 1}
        ]

    def test_sorted_index_survives_chained_updates_and_rollback(self, db):
        table = db.table("item")
        sorted_index = table.create_sorted_index("size")
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        db.begin()
        db.update("item", ("a",), {"size": 5})
        db.update("item", ("a",), {"id": "z", "size": 9})
        db.rollback()
        assert list(sorted_index.range()) == [("a",)]
        assert [r["size"] for r in db.table("item").rows()] == [1]

    def test_delete_rollback_restores_index(self, db):
        table = db.table("item")
        index = table.create_index(("color",))
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        db.begin()
        db.delete("item", ("a",))
        assert index.lookup("red") == set()
        db.rollback()
        assert index.lookup("red") == {("a",)}


class TestQueryCache:
    def _query(self, db) -> Query:
        return (
            db.query("item")
            .where(col("color") == "red")
            .order_by("id")
            .project("id", "size")
        )

    def test_hit_after_miss(self, db):
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        stats = db.query_cache.stats
        assert self._query(db).execute_cached() == [{"id": "a", "size": 1}]
        assert (stats.misses, stats.hits) == (1, 0)
        assert self._query(db).execute_cached() == [{"id": "a", "size": 1}]
        assert (stats.misses, stats.hits) == (1, 1)

    def test_mutation_invalidates(self, db):
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        self._query(db).execute_cached()
        db.insert("item", {"id": "b", "color": "red", "size": 2})
        result = self._query(db).execute_cached()
        assert [r["id"] for r in result] == ["a", "b"]
        assert db.query_cache.stats.invalidations == 1

    def test_rollback_invalidates(self, db):
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        db.begin()
        db.insert("item", {"id": "b", "color": "red", "size": 2})
        assert len(self._query(db).execute_cached()) == 2
        db.rollback()
        assert [r["id"] for r in self._query(db).execute_cached()] == ["a"]

    def test_returned_rows_are_copies(self, db):
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        first = self._query(db).execute_cached()
        first[0]["size"] = 999
        assert self._query(db).execute_cached()[0]["size"] == 1

    def test_join_invalidated_by_either_side(self, db):
        db.create_table(
            TableSchema(
                "stock",
                [Column("item_id", ColumnType.TEXT), Column("qty", ColumnType.INT)],
                primary_key=("item_id",),
            )
        )
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        db.insert("stock", {"item_id": "a", "qty": 3})

        def joined():
            return (
                db.query("item")
                .join(db.query("stock"), on=(("id", "item_id"),))
                .order_by("id")
                .execute_cached()
            )

        assert joined()[0]["qty"] == 3
        hits_before = db.query_cache.stats.hits
        joined()
        assert db.query_cache.stats.hits == hits_before + 1
        db.update("stock", ("a",), {"qty": 7})  # right side only
        assert joined()[0]["qty"] == 7

    def test_equivalent_exprs_share_an_entry(self, db):
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        q1 = db.query("item").where(col("size") > 0)
        q2 = db.query("item").where(col("size") > 0)  # distinct Expr objects
        q1.execute_cached()
        q2.execute_cached()
        assert db.query_cache.stats.hits == 1

    def test_from_rows_bypasses_cache(self, db):
        query = Query.from_rows([{"x": 1}, {"x": 2}])
        assert not query.cacheable
        assert query.execute_cached() == [{"x": 1}, {"x": 2}]
        assert db.query_cache.stats.fetches == 0

    def test_opaque_callables_key_by_identity(self, db):
        db.insert("item", {"id": "a", "color": "red", "size": 1})

        def red(row):
            return row["color"] == "red"

        db.query("item").where(red).execute_cached()
        db.query("item").where(red).execute_cached()
        assert db.query_cache.stats.hits == 1
        # A different function object is a different plan.
        db.query("item").where(lambda row: row["color"] == "red").execute_cached()
        assert db.query_cache.stats.misses == 2

    def test_aggregate_pipeline_is_cacheable(self, db):
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        db.insert("item", {"id": "b", "color": "red", "size": 3})

        def grouped():
            return (
                db.query("item")
                .group_by("color")
                .aggregate(n=("count", None), total=("sum", "size"))
                .execute_cached()
            )

        assert grouped() == [{"color": "red", "n": 2, "total": 4}]
        grouped()
        assert db.query_cache.stats.hits == 1

    def test_lru_eviction(self):
        cache = QueryCache(maxsize=2)
        db = _make_db()
        db.query_cache = cache
        db.insert("item", {"id": "a", "color": "red", "size": 1})
        for color in ("c0", "c1", "c2"):
            db.query("item").where(col("color") == color).execute_cached()
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_drop_and_recreate_does_not_serve_stale_rows(self):
        """Version counters restart at zero on recreation; drop_table must
        flush the cache so same-plan/same-version entries cannot collide."""
        db = _make_db()
        for i in range(3):
            db.insert("item", {"id": f"a{i}", "color": "red", "size": i})
        old = db.query("item").order_by("id").execute_cached()
        assert len(old) == 3
        db.drop_table("item")
        db.create_table(
            TableSchema(
                "item",
                [
                    Column("id", ColumnType.TEXT),
                    Column("color", ColumnType.TEXT),
                    Column("size", ColumnType.INT),
                ],
                primary_key=("id",),
            )
        )
        for i in range(3):
            db.insert("item", {"id": f"b{i}", "color": "blue", "size": i})
        fresh = db.query("item").order_by("id").execute_cached()
        assert [r["id"] for r in fresh] == ["b0", "b1", "b2"]
