"""Database-level behaviour: catalogue, FKs, transactions."""

import pytest

from repro.storage import Column, ColumnType, Database, ForeignKey, TableSchema
from repro.storage.errors import (
    ForeignKeyError,
    SchemaError,
    TransactionError,
    UnknownTableError,
)
from repro.storage.transactions import transaction


def _users_schema():
    return TableSchema(
        "users",
        [Column("id", ColumnType.TEXT), Column("name", ColumnType.TEXT)],
        primary_key=("id",),
    )


def _posts_schema():
    return TableSchema(
        "posts",
        [
            Column("id", ColumnType.INT),
            Column("author", ColumnType.TEXT),
            Column("editor", ColumnType.TEXT, nullable=True),
        ],
        primary_key=("id",),
        foreign_keys=[
            ForeignKey(("author",), "users", ("id",)),
            ForeignKey(("editor",), "users", ("id",)),
        ],
    )


@pytest.fixture
def linked_db():
    db = Database()
    db.create_table(_users_schema())
    db.create_table(_posts_schema())
    db.insert("users", {"id": "u1", "name": "Ann"})
    return db


class TestCatalogue:
    def test_duplicate_table_rejected(self, db):
        db.create_table(_users_schema())
        with pytest.raises(SchemaError):
            db.create_table(_users_schema())

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("nope")

    def test_fk_target_must_exist(self, db):
        with pytest.raises(SchemaError):
            db.create_table(_posts_schema())

    def test_drop_blocked_by_references(self, linked_db):
        with pytest.raises(SchemaError):
            linked_db.drop_table("users")

    def test_drop_works_in_dependency_order(self, linked_db):
        linked_db.drop_table("posts")
        linked_db.drop_table("users")
        assert linked_db.table_names == ()


class TestForeignKeys:
    def test_insert_checks_fk(self, linked_db):
        linked_db.insert("posts", {"id": 1, "author": "u1"})
        with pytest.raises(ForeignKeyError):
            linked_db.insert("posts", {"id": 2, "author": "ghost"})

    def test_null_fk_component_allowed(self, linked_db):
        linked_db.insert("posts", {"id": 1, "author": "u1", "editor": None})

    def test_update_checks_fk(self, linked_db):
        linked_db.insert("posts", {"id": 1, "author": "u1"})
        with pytest.raises(ForeignKeyError):
            linked_db.update("posts", (1,), {"author": "ghost"})

    def test_delete_blocked_while_referenced(self, linked_db):
        linked_db.insert("posts", {"id": 1, "author": "u1"})
        with pytest.raises(ForeignKeyError):
            linked_db.delete("users", ("u1",))

    def test_delete_after_referers_removed(self, linked_db):
        linked_db.insert("posts", {"id": 1, "author": "u1"})
        linked_db.delete("posts", (1,))
        linked_db.delete("users", ("u1",))
        assert len(linked_db.table("users")) == 0

    def test_pk_move_blocked_while_referenced(self, linked_db):
        linked_db.insert("posts", {"id": 1, "author": "u1"})
        with pytest.raises(ForeignKeyError):
            linked_db.update("users", ("u1",), {"id": "u2"})


class TestTransactions:
    def test_rollback_reverts_insert(self, linked_db):
        try:
            with transaction(linked_db):
                linked_db.insert("users", {"id": "u2", "name": "Bob"})
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert linked_db.table("users").get(("u2",)) is None

    def test_rollback_reverts_update_and_delete(self, linked_db):
        linked_db.insert("posts", {"id": 1, "author": "u1"})
        try:
            with transaction(linked_db):
                linked_db.update("users", ("u1",), {"name": "Changed"})
                linked_db.delete("posts", (1,))
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert linked_db.table("users").get(("u1",))["name"] == "Ann"
        assert linked_db.table("posts").get((1,))["author"] == "u1"

    def test_commit_keeps_changes(self, linked_db):
        with transaction(linked_db):
            linked_db.insert("users", {"id": "u2", "name": "Bob"})
        assert linked_db.table("users").get(("u2",))["name"] == "Bob"

    def test_nested_rollback_reverts_inner_commit(self, linked_db):
        try:
            with transaction(linked_db):
                with transaction(linked_db):
                    linked_db.insert("users", {"id": "u2", "name": "Bob"})
                raise RuntimeError("outer boom")
        except RuntimeError:
            pass
        assert linked_db.table("users").get(("u2",)) is None

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_rollback_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.rollback()

    def test_rollback_restores_indexes(self, linked_db):
        table = linked_db.table("users")
        index = table.create_index(("name",))
        try:
            with transaction(linked_db):
                linked_db.insert("users", {"id": "u2", "name": "Bob"})
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert index.lookup("Bob") == set()
        assert index.lookup("Ann") == {("u1",)}

    def test_table_created_inside_transaction_gets_sink(self, db):
        db.begin()
        db.create_table(_users_schema())
        db.insert("users", {"id": "u1", "name": "Ann"})
        db.rollback()
        # the table survives (DDL is not transactional) but the row is gone
        assert len(db.table("users")) == 0

    def test_counts(self, linked_db):
        assert linked_db.counts() == {"users": 1, "posts": 0}
