"""Expression AST construction and evaluation."""

import pytest

from repro.storage.errors import UnknownColumnError
from repro.storage.expr import BinOp, Col, In, IsNull, Lit, Not, col, lit

ROW = {"a": 3, "b": 7.5, "name": "ann", "flag": True, "maybe": None}


class TestEvaluation:
    def test_column_lookup(self):
        assert col("a").evaluate(ROW) == 3

    def test_missing_column_raises(self):
        with pytest.raises(UnknownColumnError):
            col("zzz").evaluate(ROW)

    def test_literal(self):
        assert lit(10).evaluate(ROW) == 10

    @pytest.mark.parametrize(
        "expr,expected",
        [
            (col("a") == 3, True),
            (col("a") != 3, False),
            (col("a") < 4, True),
            (col("a") <= 3, True),
            (col("b") > 7, True),
            (col("b") >= 8, False),
            (col("a") + col("b"), 10.5),
            (col("b") - col("a"), 4.5),
            (col("a") * 2, 6),
            (col("b") / col("a"), 2.5),
        ],
    )
    def test_operators(self, expr, expected):
        assert expr.evaluate(ROW) == expected

    def test_and_short_circuit(self):
        expr = (col("a") == 3) & (col("name") == "ann")
        assert expr.evaluate(ROW) is True
        assert ((col("a") == 99) & (col("missing") == 1)).evaluate(ROW) is False

    def test_or_short_circuit(self):
        assert ((col("a") == 3) | (col("missing") == 1)).evaluate(ROW) is True

    def test_not(self):
        assert (~(col("flag"))).evaluate(ROW) is False

    def test_is_null(self):
        assert col("maybe").is_null().evaluate(ROW) is True
        assert col("a").is_null().evaluate(ROW) is False

    def test_in(self):
        assert col("name").in_(["ann", "bob"]).evaluate(ROW) is True
        assert col("name").in_([]).evaluate(ROW) is False

    def test_in_unhashable_values_fall_back(self):
        expr = In(col("a"), [[1], [2], 3])
        assert expr.evaluate(ROW) is True


class TestStructure:
    def test_columns_collection(self):
        expr = ((col("a") + col("b")) > 5) & ~col("flag")
        assert expr.columns() == {"a", "b", "flag"}

    def test_wrap_literals(self):
        expr = col("a") == 3
        assert isinstance(expr, BinOp)
        assert isinstance(expr.right, Lit)

    def test_nodes_identity_hashable(self):
        node = col("a")
        assert hash(node) == hash(node)
        assert len({node, col("a")}) == 2  # distinct nodes, distinct hashes

    def test_unsupported_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("%", col("a"), lit(2))

    def test_reprs_cover_nodes(self):
        assert "col" in repr(Col("a"))
        assert "lit" in repr(Lit(1))
        assert "is_null" in repr(IsNull(col("a")))
        assert "~" in repr(Not(col("a")))
