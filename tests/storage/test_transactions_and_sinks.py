"""Regression tests for undo-log transaction semantics and sink lifecycle.

Covers the nested commit-then-outer-fail fold, undo-sink attachment for
tables created before/inside transactions, and detachment on drop_table
(the orphan-sink bug: mutating a dropped table used to raise IndexError
or pollute the owner's undo log).
"""

from __future__ import annotations

import pytest

from repro.storage import Column, ColumnType, Database, TableSchema
from repro.storage.errors import TransactionError
from repro.storage.transactions import transaction


def _schema(name: str) -> TableSchema:
    return TableSchema(
        name,
        [Column("id", ColumnType.TEXT), Column("v", ColumnType.INT)],
        primary_key=("id",),
    )


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(_schema("t"))
    return database


class TestNestedTransactions:
    def test_inner_commit_folds_into_parent_log(self, db):
        """The satellite regression: work committed by an inner transaction
        must still be undone when the outer transaction rolls back."""
        db.begin()
        db.insert("t", {"id": "outer", "v": 1})
        db.begin()
        db.insert("t", {"id": "inner", "v": 2})
        db.update("t", ("outer",), {"v": 10})
        db.commit()  # inner commit: entries fold into the parent log
        assert db.table("t").get(("inner",)) is not None
        db.rollback()  # outer rollback must revert inner-committed work too
        assert db.table("t").get(("inner",)) is None
        assert db.table("t").get(("outer",)) is None
        assert not db.in_transaction

    def test_nested_context_managers_commit_then_outer_fail(self, db):
        with pytest.raises(RuntimeError):
            with transaction(db):
                db.insert("t", {"id": "a", "v": 1})
                with transaction(db):  # commits cleanly
                    db.insert("t", {"id": "b", "v": 2})
                assert db.table("t").contains(("b",))
                raise RuntimeError("outer failure")
        assert len(db.table("t")) == 0

    def test_inner_rollback_keeps_outer_work(self, db):
        db.begin()
        db.insert("t", {"id": "keep", "v": 1})
        db.begin()
        db.insert("t", {"id": "drop", "v": 2})
        db.rollback()  # inner only
        assert db.table("t").contains(("keep",))
        assert not db.table("t").contains(("drop",))
        db.commit()
        assert db.table("t").contains(("keep",))

    def test_commit_rollback_without_begin_raise(self, db):
        with pytest.raises(TransactionError):
            db.commit()
        with pytest.raises(TransactionError):
            db.rollback()


class TestSinkLifecycle:
    def test_table_created_before_begin_is_rolled_back(self, db):
        """Tables that exist before begin() get the sink attached."""
        db.begin()
        db.insert("t", {"id": "x", "v": 1})
        db.rollback()
        assert len(db.table("t")) == 0
        assert db.table("t").undo_sink is None

    def test_table_created_inside_transaction_is_rolled_back(self, db):
        db.begin()
        late = db.create_table(_schema("late"))
        assert late.undo_sink is not None
        db.insert("late", {"id": "x", "v": 1})
        db.rollback()
        assert len(late) == 0  # rows undone (the table itself survives)

    def test_drop_table_detaches_sink(self, db):
        """Orphan-sink regression: a dropped table must not keep recording
        undo entries into (or crash on) the database's log."""
        orphan = db.table("t")
        db.begin()
        db.drop_table("t")
        db.commit()
        assert orphan.undo_sink is None
        # Mutating the orphaned handle outside any transaction used to hit
        # IndexError via the stale sink; now it is a plain standalone table.
        orphan.insert({"id": "ghost", "v": 1})
        assert orphan.contains(("ghost",))

    def test_recreated_table_gets_fresh_sink_state(self, db):
        db.drop_table("t")
        fresh = db.create_table(_schema("t"))
        assert fresh.undo_sink is None
        db.begin()
        db.insert("t", {"id": "a", "v": 1})
        assert fresh.undo_sink is not None
        db.rollback()
        assert len(fresh) == 0
        assert fresh.undo_sink is None
