"""Property-based storage-engine invariants (hypothesis)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.storage import (
    Column,
    ColumnType,
    Database,
    TableSchema,
    load_database,
    save_database,
)
from repro.storage.table import Table

ids = st.integers(min_value=0, max_value=30)
texts = st.text(alphabet="abcdef ", max_size=8)


def _schema() -> TableSchema:
    return TableSchema(
        "t",
        [
            Column("id", ColumnType.INT),
            Column("name", ColumnType.TEXT),
            Column("score", ColumnType.FLOAT, nullable=True),
        ],
        primary_key=("id",),
    )


#: op = (kind, id, name) — applied in order, duplicates/missing ignored.
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete"]), ids, texts),
    max_size=60,
)


@given(operations)
@settings(max_examples=60, deadline=None)
def test_table_matches_model_dict(ops):
    """The table behaves exactly like a dict keyed by primary key."""
    table = Table(_schema())
    model: dict[int, str] = {}
    for kind, row_id, name in ops:
        if kind == "insert":
            if row_id in model:
                continue
            table.insert({"id": row_id, "name": name})
            model[row_id] = name
        elif kind == "update":
            if row_id not in model:
                continue
            table.update((row_id,), {"name": name})
            model[row_id] = name
        else:
            if row_id not in model:
                continue
            table.delete((row_id,))
            del model[row_id]
    assert len(table) == len(model)
    for row_id, name in model.items():
        assert table.get((row_id,))["name"] == name


@given(operations)
@settings(max_examples=40, deadline=None)
def test_index_agrees_with_scan(ops):
    """Index lookups always equal a full scan's answer."""
    table = Table(_schema())
    index = table.create_index(("name",))
    seen: set[int] = set()
    for kind, row_id, name in ops:
        if kind == "insert" and row_id not in seen:
            table.insert({"id": row_id, "name": name})
            seen.add(row_id)
        elif kind == "update" and row_id in seen:
            table.update((row_id,), {"name": name})
        elif kind == "delete" and row_id in seen:
            table.delete((row_id,))
            seen.discard(row_id)
    names = {row["name"] for row in table.rows()}
    for name in names:
        scan = {row["id"] for row in table.rows() if row["name"] == name}
        via_index = {pk[0] for pk in index.lookup(name)}
        assert via_index == scan


@given(
    st.lists(
        st.tuples(ids, texts, st.one_of(st.none(), st.floats(
            min_value=-100, max_value=100, allow_nan=False))),
        max_size=25,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=40, deadline=None)
def test_persistence_roundtrip(rows):
    """save → load preserves every row and every type."""
    import tempfile

    db = Database()
    db.create_table(_schema())
    for row_id, name, score in rows:
        db.insert("t", {"id": row_id, "name": name, "score": score})
    target = tempfile.mkdtemp(prefix="repro-snap-")
    save_database(db, target)
    loaded = load_database(target)
    original = sorted(db.table("t").rows(), key=lambda r: r["id"])
    restored = sorted(loaded.table("t").rows(), key=lambda r: r["id"])
    assert original == restored


@given(operations)
@settings(max_examples=40, deadline=None)
def test_transaction_rollback_is_identity(ops):
    """A rolled-back batch leaves the table exactly as before."""
    table_db = Database()
    table_db.create_table(_schema())
    for row_id in range(5):
        table_db.insert("t", {"id": row_id, "name": "base"})
    before = sorted(table_db.table("t").rows(), key=lambda r: r["id"])
    table_db.begin()
    seen = {row["id"] for row in before}
    for kind, row_id, name in ops:
        if kind == "insert" and row_id not in seen:
            table_db.insert("t", {"id": row_id, "name": name})
            seen.add(row_id)
        elif kind == "update" and row_id in seen:
            table_db.update("t", (row_id,), {"name": name})
        elif kind == "delete" and row_id in seen:
            table_db.delete("t", (row_id,))
            seen.discard(row_id)
    table_db.rollback()
    after = sorted(table_db.table("t").rows(), key=lambda r: r["id"])
    assert before == after
