"""A tour of the CyLog language processor (§2.1).

Shows the pieces the other examples use implicitly: parsing, safety and
stratification checking, naive vs semi-naive evaluation, recursion,
negation, aggregation, open predicates with demand-driven task
generation, and the requester tools that generate CyLog from a
spreadsheet.

Run:  python examples/cylog_tour.py
"""

from repro.cylog import (
    CyLogProcessor,
    SemiNaiveEngine,
    naive_evaluate,
    parse_program,
    program_to_source,
)
from repro.forms import cylog_from_spreadsheet
from repro.forms.spreadsheet import AskColumn

# -- recursion + negation + aggregation ------------------------------------
program = parse_program("""
    % who can reach whom in the collaboration graph?
    worked_with("ann", "bob"). worked_with("bob", "carol").
    worked_with("carol", "dan"). worked_with("eve", "eve2").
    reaches(X, Y) :- worked_with(X, Y).
    reaches(X, Y) :- reaches(X, Z), worked_with(Z, Y).
    isolated(X) :- worked_with(X, _), not reaches("ann", X).
    n_reachable(count<Y>) :- reaches("ann", Y).
""")
print("pretty-printed program:\n" + program_to_source(program))

result = naive_evaluate(program)
print("ann reaches:", sorted(t[1] for t in result.facts("reaches") if t[0] == "ann"))
print("isolated from ann:", result.sorted_facts("isolated"))
print("n_reachable:", result.sorted_facts("n_reachable"))

engine = SemiNaiveEngine(program)
assert engine.run().facts("reaches") == result.facts("reaches")
engine.add_facts("worked_with", [("dan", "eve")])
print(
    "after adding dan->eve, ann reaches eve:",
    ("ann", "eve2") in engine.run().facts("reaches"),
)

# -- open predicates: demand-driven human tasks ---------------------------------
processor = CyLogProcessor("""
    open rate(photo: text, score: int) key (photo)
        asking "Rate photo {photo} from 1 to 5".
    photo("p1"). photo("p2"). photo("p3").
    rated(P, S) :- photo(P), rate(P, S).
    good(P) :- rated(P, S), S >= 4.
""")
print("\ndemanded tasks:", [r.key_values[0] for r in processor.pending_requests()])
for request, score in zip(list(processor.pending_requests()), (5, 2, 4)):
    processor.supply_answer(request, {"score": score})
print("good photos:", processor.sorted_facts("good"))
print("quiescent:", processor.is_quiescent())

# -- requester tools: spreadsheet -> CyLog ----------------------------------
rows = [
    {"id": "r1", "city": "tsukuba", "text": "flood near the station"},
    {"id": "r2", "city": "paris", "text": "tram line delayed"},
]
source = cylog_from_spreadsheet(
    rows,
    key_column="id",
    ask=[
        AskColumn(
            "credible",
            "Is report {item} credible?",
            answer_type="bool",
            choices=(True, False),
        )
    ],
    eligibility='worker_skill(W, "reporting", L), L >= 0.3',
)
print("\ngenerated CyLog from spreadsheet:\n" + source)
