"""Durable storage backends: the same platform state across restarts.

The storage engine under the platform is pluggable
(:mod:`repro.storage.backends`): the default keeps everything in memory,
``backend="wal"`` mirrors every mutation into an append-only JSONL log
with snapshot compaction, and ``backend="sqlite"`` into a SQLite file in
WAL mode with materialized listing tables for the hot worker-page query.
Both durable backends rebuild a byte-identical database — rows,
insertion order and ``Table.version`` counters — on reopen, which this
example demonstrates by "restarting" twice and diffing canonical dumps.

Run:  python examples/durable_storage.py
"""

import tempfile
from pathlib import Path

from repro import Crowd4U, HumanFactors, RuntimeConfig
from repro.storage import dump_canonical, open_database

workdir = Path(tempfile.mkdtemp(prefix="crowd4u-durable-"))


def populate(platform: Crowd4U) -> None:
    for name, skill in [("ann", 0.9), ("bob", 0.7), ("eve", 0.8)]:
        platform.register_worker(
            name,
            HumanFactors(
                native_languages=frozenset({"en"}),
                languages={"fr": 0.6},
                skills={"translation": skill},
                reliability=0.95,
            ),
        )
    platform.register_project(
        name="greetings",
        requester="durable-example",
        cylog_source="""
            open translate(seg: text, out: text) key (seg)
                asking "Translate {seg} into French".
            segment("hello"). segment("goodbye").
            eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
            translated(S, T) :- segment(S), translate(S, T).
        """,
    )
    platform.step()


# -- 1. a WAL-backed platform ------------------------------------------------
config = RuntimeConfig(backend="wal", path=workdir / "crowd4u-wal")
platform = Crowd4U(seed=7, config=config)
populate(platform)
state = dump_canonical(platform.db)
print("WAL-backed platform:", platform.snapshot())
platform.close()

# -- 2. "restart": reopening restores the identical database -----------------
reopened = config.build_database()
assert dump_canonical(reopened) == state
print("reopened WAL database matches byte-for-byte:", reopened.counts())
reopened.close()

# -- 3. the SQLite backend, plus its materialized worker-page listing --------
db = open_database(workdir / "crowd4u.sqlite", backend="sqlite")
platform = Crowd4U(seed=7, db=db)
populate(platform)
listing = db.backend.query_listing("worker_page", "w00001")
print("sqlite worker-page listing (indexed, materialized):", listing)
platform.close()

db = open_database(workdir / "crowd4u.sqlite", backend="sqlite")
print("reopened sqlite database:", db.counts())
db.close()
