"""Demo scenario 2: citizen journalism (§2.5, Figure 5).

Simultaneous collaboration: per-topic teams are formed from interested
reporters, every member's SNS id is solicited, a joint task carries the
id list, members write their sections in parallel and one member submits
for the whole team.

Run:  python examples/citizen_journalism.py
"""

from repro.apps import run_journalism_demo
from repro.forms import render_task_ui
from repro.metrics import format_table

result = run_journalism_demo(n_workers=36, seed=11)

print(format_table(
    ("metric", "value"),
    sorted({**result.summary(), **result.extras}.items()),
    title="Citizen journalism (simultaneous collaboration)",
))

platform = result.platform
processor = platform.processor(result.project_id)

print("\nPublished reports:")
for topic, article in processor.sorted_facts("published"):
    print(f"\n== {topic} ==")
    for line in article.splitlines()[:6]:
        print(f"  {line}")

# The Figure-5 screen for the last joint task that ran:
joint_tasks = [t for t in platform.pool.all() if t.kind.value == "joint"]
if joint_tasks:
    page = render_task_ui(
        platform, joint_tasks[-1].id, joint_tasks[-1].payload["addressed_to"][0]
    )
    print(f"\nFigure-5 style joint-task page rendered: {len(page)} bytes of HTML")
