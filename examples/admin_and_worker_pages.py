"""Render the demo's UI artefacts (Figures 3, 4 and 5) to HTML files.

Builds a small live deployment, then writes:

* ``/tmp/crowd4u_admin.html``  — project administration page with the
  constraint entry form (Figure 3),
* ``/tmp/crowd4u_worker.html`` — a worker's human-factors page (Figure 4),
* ``/tmp/crowd4u_joint.html``  — the simultaneous collaboration screen
  (Figure 5), when one is active.

Run:  python examples/admin_and_worker_pages.py
"""

from pathlib import Path

from repro.apps.common import build_crowd
from repro.apps.journalism import build_journalism_project, journalism_answer_fn
from repro.forms import render_admin_page, render_task_ui, render_worker_page
from repro.sim import SimulationDriver

platform = build_crowd(24, seed=5)
project = build_journalism_project(platform)

# Drive until at least one joint task exists so Figure 5 has content.
driver = SimulationDriver(platform, answer_fn=journalism_answer_fn, seed=5)
joint_task = None
for _ in range(60):
    platform.step()
    driver._declare_interests()
    driver._answer_membership_proposals()
    joints = [
        t
        for t in platform.pool.all()
        if t.kind.value == "joint" and t.status.value == "pending"
    ]
    if joints:
        joint_task = joints[0]
        # a couple of live contributions so the shared document is non-empty
        for member in joint_task.payload["addressed_to"][:2]:
            platform.contribute(joint_task.parent_task_id, member,
                                f"draft paragraph from {member}")
        break
    driver._perform_micro_tasks()

admin_html = render_admin_page(platform, project.id)
worker_html = render_worker_page(platform, platform.workers.ids()[0])
Path("/tmp/crowd4u_admin.html").write_text(admin_html)
Path("/tmp/crowd4u_worker.html").write_text(worker_html)
print(f"admin page:  /tmp/crowd4u_admin.html   ({len(admin_html)} bytes)")
print(f"worker page: /tmp/crowd4u_worker.html  ({len(worker_html)} bytes)")

if joint_task is not None:
    joint_html = render_task_ui(
        platform, joint_task.id, joint_task.payload["addressed_to"][0]
    )
    Path("/tmp/crowd4u_joint.html").write_text(joint_html)
    print(f"joint page:  /tmp/crowd4u_joint.html   ({len(joint_html)} bytes)")
else:
    print("no joint task materialised within the step budget")
