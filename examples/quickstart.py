"""Quickstart: a collaborative crowdsourcing project in ~60 lines.

Registers workers, declares a CyLog project with a human-evaluated (open)
predicate, walks the Figure-2 workflow by hand — eligibility, interest,
team proposal, undertaking, the sequential improvement chain — and reads
the derived facts back out.

Run:  python examples/quickstart.py
"""

from repro import (
    Crowd4U,
    HumanFactors,
    RuntimeConfig,
    SchemeKind,
    SkillRequirement,
    TeamConstraints,
)

# RuntimeConfig gathers every deployment knob (storage backend, engine
# sharding/executor, memory budgets); the defaults are an in-memory,
# single-store serial deployment — see examples/durable_storage.py for a
# platform that survives restarts.
platform = Crowd4U(seed=42, config=RuntimeConfig())

# -- 1. workers join with their human factors (Figure 4) --------------------
for name, skill in [("ann", 0.9), ("bob", 0.7), ("eve", 0.8), ("joe", 0.5)]:
    platform.register_worker(
        name,
        HumanFactors(
            native_languages=frozenset({"en"}),
            languages={"fr": 0.6},
            region="tsukuba",
            skills={"translation": skill},
            reliability=0.95,
        ),
    )

# -- 2. a requester registers a declarative project (Figure 2) ----------------
project = platform.register_project(
    name="greetings",
    requester="quickstart",
    cylog_source="""
        % ask the crowd to translate greetings into French
        open translate(seg: text, out: text) key (seg)
            asking "Translate {seg} into French".
        segment("hello"). segment("thank you").
        eligible(W) :- worker_language(W, "fr", P), P >= 0.5.
        translated(S, T) :- segment(S), translate(S, T).
        n_done(count<S>) :- translated(S, T).
    """,
    scheme=SchemeKind.SEQUENTIAL,
    constraints=TeamConstraints(
        min_size=2,
        critical_mass=3,
        skills=(SkillRequirement("translation", 0.6),),
    ),
)

platform.step()  # CyLog generates one task per unanswered segment
tasks = platform.pool.pending_root_tasks(project.id)
print(f"generated tasks: {[(t.id, t.key_values) for t in tasks]}")

# -- 3. workers declare interest; the controller forms affinity-dense teams --
for task in tasks:
    for worker_id in platform.ledger.eligible_workers(task.id):
        platform.declare_interest(worker_id, task.id)
platform.step()

for task in tasks:
    team = platform.teams.get(platform.pool.get(task.id).team_id)
    print(
        f"{task.id}: proposed team {team.members} "
        f"(affinity {team.affinity_score:.2f})"
    )
    for member in team.members:
        platform.confirm_membership(member, task.id)  # Undertakes

# -- 4. the sequential chain: draft, then dynamically generated reviews ------
while True:
    micro = [
        t for w in platform.workers.ids() for t in platform.tasks_for_worker(w)
    ]
    if not micro:
        break
    for task in micro:
        worker = task.assignee
        previous = task.payload.get("previous_text", "")
        text = (
            f"{previous} ->[{worker}]" if previous else f"FR({task.instruction[10:24]})"
        )
        platform.submit_micro_result(task.id, worker, {"text": text, "quality": 0.9})

# -- 5. results flow back into the CyLog database ------------------------------
processor = platform.processor(project.id)
print("translated:", processor.sorted_facts("translated"))
print("n_done:", processor.sorted_facts("n_done"))
print("snapshot:", platform.snapshot())
