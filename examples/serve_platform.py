"""Serve a live Crowd4U platform over HTTP and drive it with clients.

Builds a small deployment, starts the asyncio serving front-end on an
ephemeral port, and plays both sides of the wire:

* a burst of volunteers registering and answering **concurrently** —
  coalesced by the admission queue into a handful of engine ticks,
* repeated worker-page loads — served from the version-keyed query
  cache, with the hits attributed to the server's own stats block,
* one ``/step`` barrier and a final ``/stats`` read.

Run:  python examples/serve_platform.py
"""

import asyncio

from repro import RuntimeConfig, ServingConfig
from repro.metrics import format_stats_table
from repro.serving.http import HttpClient

CYLOG_SOURCE = """
    open rate(item: text, verdict: text) key (item) asking "Rate {item}".
    item("i1"). item("i2"). item("i3").
    rated(I, V) :- item(I), rate(I, V).
"""

FACTORS = {
    "native_languages": ["en"],
    "languages": {"fr": 0.8},
    "skills": {"translation": 0.7},
    "reliability": 0.9,
}


async def volunteer(address, index: int) -> str:
    """One volunteer: register, answer an item, read the own page."""
    async with HttpClient(*address) as client:
        created = await client.request(
            "POST",
            "/workers",
            json_body={"name": f"vol{index}", "factors": FACTORS},
        )
        worker_id = created.parsed_json()["result"]["worker_id"]
        await client.request(
            "POST",
            "/projects/proj0000/answers",
            json_body={
                "predicate": "rate",
                "key_values": {"item": f"i{index % 3 + 1}"},
                "fill_values": {"verdict": ("good", "bad")[index % 2]},
            },
        )
        page = await client.request("GET", f"/workers/{worker_id}/page")
        assert page.status == 200
        return worker_id


async def main() -> None:
    config = RuntimeConfig(serving=ServingConfig(batch_window=0.01))
    server = config.build_server()
    server.platform.register_project("survey", "req", CYLOG_SOURCE)

    async with server:
        address = server.address
        print(f"serving on http://{address[0]}:{address[1]}")

        # Twelve volunteers at once: the admission queue coalesces their
        # writes into far fewer engine continuations than requests.
        worker_ids = await asyncio.gather(
            *(volunteer(address, i) for i in range(12))
        )
        print(f"registered {len(worker_ids)} volunteers over HTTP")

        async with HttpClient(*address) as client:
            stepped = await client.request("POST", "/step", json_body={"dt": 1.0})
            print(f"platform round over HTTP: {stepped.parsed_json()['result']}")

            # Warm page loads are cache-fed; the server attributes them.
            for worker_id in worker_ids[:4]:
                await client.request("GET", f"/workers/{worker_id}/page")
            health = await client.request("GET", "/healthz")
            print(f"health: {health.parsed_json()}")

    print()
    print(format_stats_table(server.stats_sections(), title="serving stats"))
    coalescing = server.stats.coalescing
    print(f"\ncoalescing: {server.stats.admitted} writes in "
          f"{server.stats.ticks} ticks ({coalescing:.1f}x)")
    server.platform.close()


if __name__ == "__main__":
    asyncio.run(main())
