"""Demo scenario 3: surveillance tasks (§2.5).

Hybrid collaboration over a region × period grid: each cell's team is
split into a sequential "facts" stage (observe, then correct each other)
and a simultaneous "testimonials" stage; the dossiers merge both.

Run:  python examples/surveillance_network.py
"""

from repro.apps import run_surveillance_demo
from repro.metrics import format_table

result = run_surveillance_demo(n_workers=60, seed=13)

print(format_table(
    ("metric", "value"),
    sorted({**result.summary(), **result.extras}.items()),
    title="Surveillance grid (hybrid collaboration)",
))

platform = result.platform
processor = platform.processor(result.project_id)

print("\nDossiers (region, period -> first 70 chars):")
for region, period, dossier in processor.sorted_facts("dossier"):
    print(f"  {region:10s} {period:10s} {dossier[:70]!r}")

print(
    "\nRegion cohesion of finished teams "
    f"(same-region fraction): {result.extras['region_cohesion']:.2f}"
)
