"""Demo scenario 1: video subtitle generation + translation (§2.5).

Sequential collaboration on a simulated crowd: transcribe clips, then
translate the produced subtitles — the second wave of tasks is demanded
*dynamically* by the CyLog processor as transcriptions arrive.

Run:  python examples/translation_pipeline.py
"""

from repro.apps import run_translation_demo
from repro.metrics import format_table

result = run_translation_demo(n_workers=40, n_clips=6, seed=7)

print(format_table(
    ("metric", "value"),
    sorted(result.summary().items()),
    title="Subtitle translation (sequential collaboration)",
))

platform = result.platform
processor = platform.processor(result.project_id)

print("\nSubtitle -> translation chain (first 5):")
for seg, out in processor.sorted_facts("translated")[:5]:
    print(f"  {seg!r:40s} -> {out[:60]!r}")

print("\nTeams that finished (id, algorithm, affinity, members):")
for team in platform.teams.all():
    if team.status.value == "finished":
        print(
            f"  {team.id}  {team.algorithm:8s} {team.affinity_score:6.2f}  "
            f"{','.join(team.members)}"
        )

print(f"\nLearned skill estimates for {result.extras['skill_estimates']} workers")
